// Server-parallelism tests: the per-shard slice ownership of the MC core,
// the worker-pool event loop in front of it, and the knobs that shape both.
//
// Covers the shard routing edge cases (one shard, a shard count that does
// not divide the text range, a chunk straddling a shard boundary), the
// worker-pool loop semantics (static lane ownership, bounded-lane deferral,
// batch-drain accounting, the park-all exclusive barrier), the CLI-level
// validation of --shards/--workers combinations, digest-reply coalescing
// raced against a concurrent same-shard install (a TSan target: two
// handlers inside the core at once), and end-to-end bit identity — the
// round-robin fleet must produce identical guest results INCLUDING cycle
// counts no matter how many workers drain the lanes, crash schedules and
// all.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "minicc/compiler.h"
#include "softcache/mc.h"
#include "softcache/protocol.h"
#include "softcache/server_loop.h"
#include "softcache/system.h"
#include "vm/machine.h"

namespace sc {
namespace {

using softcache::McServerConfig;
using softcache::McServerLoop;
using softcache::McServerLoopConfig;
using softcache::MemoryController;
using softcache::MsgType;
using softcache::Reply;
using softcache::Request;

image::Image LoopImage() {
  auto img = minicc::CompileMiniC(R"(
    int a[256];
    int main() {
      int sum = 0;
      for (int i = 0; i < 256; i = i + 1) { a[i] = i * 3; }
      for (int i = 0; i < 256; i = i + 1) { sum = sum + a[i]; }
      return sum % 251;
    }
  )");
  SC_CHECK(img.ok());
  return std::move(*img);
}

Request ChunkReq(uint32_t addr, uint32_t client_id, uint32_t seq = 1) {
  Request req;
  req.type = MsgType::kChunkRequest;
  req.seq = seq;
  req.addr = addr;
  req.client_id = client_id;
  return req;
}

Reply MustParse(const std::vector<uint8_t>& bytes) {
  auto reply = Reply::Parse(bytes);
  SC_CHECK(reply.ok()) << reply.error().ToString();
  return std::move(*reply);
}

// ---------------------------------------------------------------------------
// Shard routing edge cases
// ---------------------------------------------------------------------------

TEST(ShardRouting, OneShardMapsEveryAddressToZero) {
  const image::Image img = LoopImage();
  MemoryController mc(img, softcache::Style::kSparc, 64);
  const auto& server = mc.server();
  EXPECT_EQ(server.shards(), 1u);
  for (uint32_t addr : {0u, img.text_base, img.text_base + 4,
                        img.text_end() - 4, img.text_end(), 0xffffffffu}) {
    EXPECT_EQ(server.ShardFor(addr), 0u) << "addr " << addr;
  }
}

TEST(ShardRouting, NonDividingShardCountCoversWholeTextRange) {
  const image::Image img = LoopImage();
  McServerConfig config;
  config.shards = 3;  // never divides a word-aligned text span evenly
  MemoryController mc(img, softcache::Style::kSparc, 64, 1, config);
  const auto& server = mc.server();
  uint32_t prev = 0;
  for (uint32_t addr = img.text_base; addr < img.text_end(); addr += 4) {
    const uint32_t shard = server.ShardFor(addr);
    ASSERT_LT(shard, 3u) << "addr " << addr << " routed out of range";
    ASSERT_GE(shard, prev) << "shard map not monotone at " << addr;
    prev = shard;
  }
  // The slices are contiguous and all non-empty for this text size: the
  // last in-range address must land in the last shard.
  EXPECT_EQ(server.ShardFor(img.text_end() - 4), 2u);
  // Outside the text range (including the one-past-the-end boundary)
  // everything folds into shard 0 — garbage frames get a stable home.
  EXPECT_EQ(server.ShardFor(img.text_end()), 0u);
  EXPECT_EQ(server.ShardFor(img.text_base - 4), 0u);
}

TEST(ShardRouting, InvalidateRangeStraddlingShardBoundaryDropsBothSlices) {
  const image::Image img = LoopImage();
  McServerConfig config;
  config.shards = 2;
  MemoryController mc(img, softcache::Style::kSparc, 64, 1, config);
  auto& server = mc.server();
  // The first address owned by shard 1 is the boundary; memoize one chunk
  // ending just below it and one starting at it.
  uint32_t boundary = img.text_base;
  while (server.ShardFor(boundary) == 0) boundary += 4;
  ASSERT_EQ(server.ShardFor(boundary - 4), 0u);
  ASSERT_EQ(server.ShardFor(boundary), 1u);
  ASSERT_TRUE(server.CutShared(boundary - 4).ok());
  ASSERT_TRUE(server.CutShared(boundary).ok());
  ASSERT_GE(server.shard_memo_entries(0), 1u);
  ASSERT_GE(server.shard_memo_entries(1), 1u);

  // A write range straddling the boundary overlaps memoized chunks in BOTH
  // slices; the scan must cross the boundary and drop each side's entry.
  server.InvalidateMemoRange(boundary - 4, 8);
  EXPECT_EQ(server.shard_memo_entries(0), 0u);
  EXPECT_EQ(server.shard_memo_entries(1), 0u);
  EXPECT_GE(server.stats().memo_invalidations, 2u);
}

// ---------------------------------------------------------------------------
// CLI-level validation of the parallelism knobs
// ---------------------------------------------------------------------------

TEST(ValidateParallelism, AcceptsAndRejectsTheBoundaries) {
  std::string error;
  // Happy paths, including workers == shards.
  EXPECT_TRUE(softcache::ValidateServerParallelism(1, 0, 1, &error));
  EXPECT_TRUE(softcache::ValidateServerParallelism(4, 4, 2, &error));
  EXPECT_TRUE(softcache::ValidateServerParallelism(4096, 8, 64, &error));

  // Zero-value boundaries are hard errors, never silent clamps.
  EXPECT_FALSE(softcache::ValidateServerParallelism(0, 0, 1, &error));
  EXPECT_NE(error.find("shards"), std::string::npos);
  EXPECT_FALSE(softcache::ValidateServerParallelism(4097, 0, 1, &error));

  // workers > shards: extra workers would never own a lane.
  EXPECT_FALSE(softcache::ValidateServerParallelism(2, 3, 4, &error));
  EXPECT_NE(error.find("workers"), std::string::npos);
  EXPECT_FALSE(softcache::ValidateServerParallelism(4, -1, 4, &error));

  // A worker pool needs a fleet: solo runs bypass the loop entirely.
  EXPECT_FALSE(softcache::ValidateServerParallelism(4, 2, 1, &error));
  EXPECT_NE(error.find("clients"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Worker-pool loop semantics (test-double handler, no MC underneath)
// ---------------------------------------------------------------------------

// Echo handler: reply = [port, frame...]; lets every assertion check that a
// ticket's reply came from ITS OWN frame, whatever thread serviced it.
std::vector<uint8_t> Echo(uint32_t port, const std::vector<uint8_t>& frame) {
  std::vector<uint8_t> reply(frame.size() + 1);
  reply[0] = static_cast<uint8_t>(port);
  std::copy(frame.begin(), frame.end(), reply.begin() + 1);
  return reply;
}

TEST(WorkerPool, StaticLaneOwnershipServicesEveryFrame) {
  // 3 lanes, 2 workers: worker 0 owns lanes {0, 2}, worker 1 owns {1} — a
  // deliberately non-dividing split. Route by the first frame byte.
  McServerLoop loop(
      Echo,
      [](uint32_t, const std::vector<uint8_t>& frame) {
        return static_cast<uint32_t>(frame[0]);
      },
      McServerLoopConfig{3, 2, 0});
  constexpr uint32_t kThreads = 4;
  constexpr uint32_t kFrames = 64;
  std::vector<std::thread> clients;
  std::atomic<uint32_t> wrong{0};
  for (uint32_t t = 0; t < kThreads; ++t) {
    clients.emplace_back([&loop, &wrong, t] {
      for (uint32_t i = 0; i < kFrames; ++i) {
        const std::vector<uint8_t> frame = {static_cast<uint8_t>(i % 3),
                                            static_cast<uint8_t>(t),
                                            static_cast<uint8_t>(i)};
        const std::vector<uint8_t> reply = loop.Submit(t, frame);
        if (reply.size() != 4 || reply[0] != t || reply[1] != frame[0] ||
            reply[2] != t || reply[3] != static_cast<uint8_t>(i)) {
          ++wrong;
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(wrong.load(), 0u);
  EXPECT_EQ(loop.stats().requests_enqueued, kThreads * kFrames);
  // Every serviced frame is attributed to exactly one pool worker.
  uint64_t worker_frames = 0;
  for (const auto& w : loop.worker_stats()) worker_frames += w.frames;
  EXPECT_EQ(worker_frames, kThreads * kFrames);
  EXPECT_GE(loop.stats().batches_drained, 1u);
}

TEST(WorkerPool, BoundedLaneDefersTheOverflowingSubmitter) {
  // One lane bounded at 1 ticket, one worker. The handler parks until all
  // three submitters have arrived, so the queue admission order is forced:
  // one ticket in service, one queued (at the bound), one deferred.
  std::atomic<uint32_t> arrived{0};
  McServerLoop loop(
      [&arrived](uint32_t port, const std::vector<uint8_t>& frame) {
        while (arrived.load() < 3) std::this_thread::yield();
        return Echo(port, frame);
      },
      nullptr, McServerLoopConfig{1, 1, 1});
  std::vector<std::thread> clients;
  for (uint32_t t = 0; t < 3; ++t) {
    clients.emplace_back([&, t] {
      ++arrived;
      const std::vector<uint8_t> reply = loop.Submit(t, {7});
      EXPECT_EQ(reply.size(), 2u);
      EXPECT_EQ(reply[0], t);
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(loop.stats().requests_enqueued, 3u);
  EXPECT_EQ(loop.stats().max_queue_depth, 1u);  // the bound held
  EXPECT_GE(loop.stats().requests_deferred, 1u);
}

TEST(WorkerPool, ParkAllExclusiveWaitsOutInFlightHandlers) {
  std::atomic<uint32_t> in_flight{0};
  std::atomic<bool> gate{false};
  McServerLoop loop(
      [&](uint32_t port, const std::vector<uint8_t>& frame) {
        ++in_flight;
        while (!gate.load()) std::this_thread::yield();
        --in_flight;
        return Echo(port, frame);
      },
      [](uint32_t, const std::vector<uint8_t>& frame) {
        return static_cast<uint32_t>(frame[0]);
      },
      McServerLoopConfig{2, 2, 0});
  // Two tickets in flight, one per worker, both parked inside the handler.
  std::thread c0([&loop] { loop.Submit(0, {0}); });
  std::thread c1([&loop] { loop.Submit(1, {1}); });
  while (in_flight.load() < 2) std::this_thread::yield();

  std::atomic<bool> ran{false};
  std::atomic<uint32_t> observed{99};
  std::thread excl([&] {
    loop.RunExclusive([&] {
      observed = in_flight.load();  // must be 0: the barrier drained first
      ran = true;
    });
  });
  // The exclusive section must NOT start while handlers are in flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(ran.load());
  gate = true;  // drain the handlers; the barrier then admits the exclusive
  excl.join();
  c0.join();
  c1.join();
  EXPECT_TRUE(ran.load());
  EXPECT_EQ(observed.load(), 0u);
  EXPECT_EQ(loop.stats().exclusive_sections, 1u);

  // The lanes resume after the exclusive: a fresh ticket still completes.
  const std::vector<uint8_t> reply = loop.Submit(5, {0});
  EXPECT_EQ(reply[0], 5u);
}

// ---------------------------------------------------------------------------
// Digest reply raced against a concurrent same-shard install (TSan target)
// ---------------------------------------------------------------------------

TEST(SharedReplyRace, ConcurrentSameShardDemandsStayCoherent) {
  const image::Image img = LoopImage();
  McServerConfig config;
  config.shards = 1;  // force every demand into ONE slice
  MemoryController mc(img, softcache::Style::kSparc, 64, 1, config);

  // Two clients demand the same chunk sequence concurrently, straight into
  // the endpoint (the un-switched surface is the documented thread-safe
  // path): every CutShared races on the single shard's lock and every
  // publish/lookup races on the digest window. TSan verifies the ownership
  // map; the assertions verify the protocol stays coherent — a digest
  // reply may only ever follow a published body.
  constexpr uint32_t kRounds = 50;
  std::atomic<uint32_t> bad{0};
  auto client = [&](uint32_t id) {
    for (uint32_t r = 0; r < kRounds; ++r) {
      const uint32_t addr = img.entry + (r % 8) * 4;
      Request req = ChunkReq(addr, id, r + 1);
      req.type = MsgType::kChunkSharedRequest;
      const Reply reply = MustParse(mc.Handle(req.Serialize()));
      if (reply.type == MsgType::kChunkDigestReply) {
        // Payload-less coalesced reply (aux/extra = digest lo/hi): the body
        // must already have crossed the wire, i.e. its digest is published.
        const uint64_t digest = static_cast<uint64_t>(reply.aux) |
                                (static_cast<uint64_t>(reply.extra) << 32);
        if (reply.payload.empty() == false ||
            !mc.server().DigestPublished(digest)) {
          ++bad;
        }
      } else if (reply.type != MsgType::kChunkReply &&
                 reply.type != MsgType::kChunkBatchReply) {
        ++bad;
      }
    }
  };
  std::thread a(client, 1);
  std::thread b(client, 2);
  a.join();
  b.join();
  EXPECT_EQ(bad.load(), 0u);
  const auto& stats = mc.server().stats();
  // Every demand was served, each distinct chunk cut exactly once
  // fleet-wide, and at least one reply coalesced to a digest.
  EXPECT_EQ(stats.shared_requests, 2 * kRounds);
  EXPECT_EQ(mc.server().shard_memo_entries(0), 8u);
  EXPECT_GE(stats.digest_replies, 1u);
  EXPECT_EQ(stats.translates + stats.translate_memo_hits, 2 * kRounds);
}

// ---------------------------------------------------------------------------
// End-to-end bit identity across worker counts
// ---------------------------------------------------------------------------

struct FleetStory {
  std::vector<std::string> outputs;
  std::vector<uint64_t> cycles;
  std::vector<uint64_t> instructions;
  uint64_t translates = 0;
};

FleetStory RunFleetStory(const image::Image& img, uint32_t shards,
                         uint32_t workers, uint64_t crash_period = 0) {
  softcache::MultiClientConfig config;
  config.clients = 4;
  config.base.style = softcache::Style::kSparc;
  config.base.tcache_bytes = 8 * 1024;
  config.server.shards = shards;
  config.server.workers = workers;
  if (crash_period != 0) {
    config.base.fault.seed = 11;
    config.base.fault.crash_period = crash_period;
  }
  softcache::MultiClientSystem fleet(img, config);
  const auto results = fleet.RunAll(200'000'000ull);
  FleetStory story;
  for (uint32_t i = 0; i < config.clients; ++i) {
    SC_CHECK(results[i].reason == vm::StopReason::kHalted)
        << "client " << i << ": " << results[i].fault_message;
    story.outputs.push_back(fleet.OutputString(i));
    story.cycles.push_back(results[i].cycles);
    story.instructions.push_back(results[i].instructions);
  }
  story.translates = fleet.mc().server().stats().translates;
  return story;
}

TEST(WorkerFleetIdentity, RoundRobinIsBitIdenticalAcrossWorkerCounts) {
  const image::Image img = LoopImage();
  // The round-robin scheduler keeps ONE frame in flight fleet-wide, so the
  // worker pool may change nothing at all — cycles included.
  const FleetStory w0 = RunFleetStory(img, 2, 0);
  const FleetStory w1 = RunFleetStory(img, 2, 1);
  const FleetStory w2 = RunFleetStory(img, 2, 2);
  EXPECT_EQ(w0.outputs, w1.outputs);
  EXPECT_EQ(w0.outputs, w2.outputs);
  EXPECT_EQ(w0.cycles, w1.cycles);
  EXPECT_EQ(w0.cycles, w2.cycles);
  EXPECT_EQ(w0.instructions, w2.instructions);
  EXPECT_EQ(w0.translates, w2.translates);
}

TEST(WorkerFleetIdentity, CrashRestartsAreIdenticalUnderWorkers) {
  const image::Image img = LoopImage();
  // Server crash schedules restart sessions through the loop's park-all
  // exclusive section; a worker pool must not change what the guest sees.
  const FleetStory w0 = RunFleetStory(img, 2, 0, /*crash_period=*/3000);
  const FleetStory w2 = RunFleetStory(img, 2, 2, /*crash_period=*/3000);
  EXPECT_EQ(w0.outputs, w2.outputs);
  EXPECT_EQ(w0.cycles, w2.cycles);
  EXPECT_EQ(w0.instructions, w2.instructions);
}

}  // namespace
}  // namespace sc
