// Assembler tests: syntax, directives, label fixups, pseudo-instructions,
// and error reporting — each verified by running the assembled program.
#include <gtest/gtest.h>

#include "sasm/assembler.h"
#include "vm/machine.h"

namespace sc {
namespace {

vm::RunResult AssembleAndRun(std::string_view source, std::string* output = nullptr,
                             std::string_view input = "") {
  auto img = sasm::Assemble(source);
  SC_CHECK(img.ok()) << img.error().ToString();
  vm::Machine machine;
  machine.LoadImage(*img);
  machine.SetInput(std::vector<uint8_t>(input.begin(), input.end()));
  const vm::RunResult result = machine.Run(10'000'000);
  if (output != nullptr) *output = machine.OutputString();
  return result;
}

TEST(SasmBasic, MinimalProgram) {
  const auto result = AssembleAndRun(R"(
    _start:
      li a0, 7
      sys 0
  )");
  EXPECT_EQ(result.reason, vm::StopReason::kHalted);
  EXPECT_EQ(result.exit_code, 7);
}

TEST(SasmBasic, ArithmeticChain) {
  const auto result = AssembleAndRun(R"(
    _start:
      li t0, 6
      li t1, 7
      mul t2, t0, t1       # 42
      addi t2, t2, 58      # 100
      li t3, 3
      div t2, t2, t3       # 33
      mv a0, t2
      sys 0
  )");
  EXPECT_EQ(result.exit_code, 33);
}

TEST(SasmBasic, BranchesAndLabels) {
  const auto result = AssembleAndRun(R"(
    _start:
      li t0, 0        # counter
      li t1, 0        # sum
    loop:
      add t1, t1, t0
      addi t0, t0, 1
      li t2, 10
      blt t0, t2, loop
      mv a0, t1
      sys 0
  )");
  EXPECT_EQ(result.exit_code, 45);
}

TEST(SasmBasic, CallAndReturn) {
  const auto result = AssembleAndRun(R"(
    .entry main
    .func double_it
      add rv, a0, a0
      ret
    .endfunc
    .func main
      addi sp, sp, -8
      sw ra, 4(sp)
      li a0, 21
      call double_it
      mv a0, rv
      lw ra, 4(sp)
      addi sp, sp, 8
      sys 0
    .endfunc
  )");
  EXPECT_EQ(result.exit_code, 42);
}

TEST(SasmData, WordsAndStrings) {
  std::string output;
  const auto result = AssembleAndRun(R"(
    .data
    values: .word 10, 20, 30
    msg:    .asciiz "hi\n"
    .text
    _start:
      la t0, values
      lw t1, 0(t0)
      lw t2, 4(t0)
      lw t3, 8(t0)
      add t1, t1, t2
      add t1, t1, t3
      la a0, msg
      li a1, 3
      sys 3            # write
      mv a0, t1
      sys 0
  )", &output);
  EXPECT_EQ(result.exit_code, 60);
  EXPECT_EQ(output, "hi\n");
}

TEST(SasmData, BytesHalvesAlign) {
  const auto result = AssembleAndRun(R"(
    .data
    b: .byte 1, 2, 3
    .align 2
    h: .half 0x1234
    .align 4
    w: .word 0xdeadbeef
    .text
    _start:
      la t0, b
      lbu t1, 2(t0)      # 3
      la t0, h
      lhu t2, 0(t0)      # 0x1234
      la t0, w
      lw t3, 0(t0)
      srli t3, t3, 28    # 0xd
      add a0, t1, t3     # 3 + 13 = 16
      sys 0
  )");
  EXPECT_EQ(result.exit_code, 16);
}

TEST(SasmData, BssSpace) {
  const auto result = AssembleAndRun(R"(
    .bss
    buffer: .space 64
    .text
    _start:
      la t0, buffer
      li t1, 99
      sw t1, 32(t0)
      lw a0, 32(t0)
      sys 0
  )");
  EXPECT_EQ(result.exit_code, 99);
}

TEST(SasmPseudo, LiLaNotNeg) {
  const auto result = AssembleAndRun(R"(
    _start:
      li t0, 0x12345678
      srli t0, t0, 24        # 0x12
      not t1, zero           # -1
      neg t2, t1             # 1
      add a0, t0, t2         # 0x13
      sys 0
  )");
  EXPECT_EQ(result.exit_code, 0x13);
}

TEST(SasmPseudo, CharLiterals) {
  const auto result = AssembleAndRun(R"(
    _start:
      li a0, 'A'
      addi a0, a0, 1
      sys 1              # putchar 'B'
      li a0, 0
      sys 0
  )");
  EXPECT_EQ(result.reason, vm::StopReason::kHalted);
}

TEST(SasmSymbols, FunctionRangesInImage) {
  auto img = sasm::Assemble(R"(
    .func f
      ret
    .endfunc
    .func _start
      halt
    .endfunc
  )");
  ASSERT_TRUE(img.ok());
  const image::Symbol* f = img->FindSymbol("f");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->size, 4u);
  EXPECT_EQ(img->FunctionAt(f->addr), f);
}

TEST(SasmErrors, UndefinedLabel) {
  auto img = sasm::Assemble("_start: j nowhere\n");
  ASSERT_FALSE(img.ok());
  EXPECT_NE(img.error().message.find("undefined symbol"), std::string::npos);
  EXPECT_EQ(img.error().line, 1);
}

TEST(SasmErrors, DuplicateLabel) {
  auto img = sasm::Assemble("x: nop\nx: nop\n_start: halt\n");
  ASSERT_FALSE(img.ok());
  EXPECT_NE(img.error().message.find("duplicate"), std::string::npos);
}

TEST(SasmErrors, MissingEntry) {
  auto img = sasm::Assemble("foo: halt\n");
  ASSERT_FALSE(img.ok());
  EXPECT_NE(img.error().message.find("_start"), std::string::npos);
}

TEST(SasmErrors, BadRegister) {
  auto img = sasm::Assemble("_start: addi r99, zero, 1\n");
  ASSERT_FALSE(img.ok());
}

TEST(SasmErrors, ImmediateOutOfRange) {
  auto img = sasm::Assemble("_start: addi t0, zero, 40000\n");
  ASSERT_FALSE(img.ok());
  EXPECT_NE(img.error().message.find("out of range"), std::string::npos);
}

TEST(SasmErrors, WrongOperandCount) {
  auto img = sasm::Assemble("_start: add t0, t1\n");
  ASSERT_FALSE(img.ok());
  EXPECT_NE(img.error().message.find("expects"), std::string::npos);
}

TEST(SasmErrors, InstructionInDataSection) {
  auto img = sasm::Assemble(".data\nnop\n_start: halt\n");
  ASSERT_FALSE(img.ok());
  EXPECT_NE(img.error().message.find("outside .text"), std::string::npos);
}

TEST(SasmErrors, UnterminatedString) {
  auto img = sasm::Assemble(".data\ns: .asciiz \"oops\n.text\n_start: halt\n");
  ASSERT_FALSE(img.ok());
}

TEST(SasmComments, BothStyles) {
  const auto result = AssembleAndRun(R"(
    _start:          # hash comment
      li a0, 5       ; semicolon comment
      sys 0
  )");
  EXPECT_EQ(result.exit_code, 5);
}

}  // namespace
}  // namespace sc
