// Observability subsystem: ring tracer + Chrome JSON export, metrics
// registry snapshot/delta, bounded Timeline/Series, and the contract that
// observation never perturbs the simulation (tracing on == tracing off,
// bit for bit).
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "softcache/system.h"
#include "workloads/workloads.h"

namespace sc {
namespace {

// --- Minimal JSON checker -------------------------------------------------
// Validates syntax (objects, arrays, strings, numbers, literals). Returns
// true iff the whole string is one valid JSON value.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}
  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }
  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek('}')) { ++pos_; return true; }
    for (;;) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (!Peek(':')) return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek(',')) { ++pos_; continue; }
      if (Peek('}')) { ++pos_; return true; }
      return false;
    }
  }
  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek(']')) { ++pos_; return true; }
    for (;;) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek(',')) { ++pos_; continue; }
      if (Peek(']')) { ++pos_; return true; }
      return false;
    }
  }
  bool String() {
    if (!Peek('"')) return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool Number() {
    const size_t start = pos_;
    if (Peek('-')) ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool Literal(const char* word) {
    const size_t len = std::string(word).size();
    if (s_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }
  bool Peek(char c) const { return pos_ < s_.size() && s_[pos_] == c; }
  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

// RAII: installs a tracer globally, removes it on scope exit so no test
// leaks tracing into another.
struct ScopedTracer {
  explicit ScopedTracer(obs::Tracer* t) { obs::SetTracer(t); }
  ~ScopedTracer() { obs::SetTracer(nullptr); }
};

// --- Tracer ---------------------------------------------------------------

TEST(Tracer, RecordsSpansAndInstants) {
  obs::Tracer tracer;
  tracer.Enable(64);
  ScopedTracer install(&tracer);
  {
    OBS_SPAN("test", "outer", "x", 1u);
    OBS_INSTANT("test", "tick", "v", 42u);
  }
  const auto events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].ph, obs::Phase::kBegin);
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_EQ(events[1].ph, obs::Phase::kInstant);
  EXPECT_EQ(events[1].arg_val[0], 42u);
  EXPECT_EQ(events[2].ph, obs::Phase::kEnd);
}

TEST(Tracer, DisabledRecordsNothingAndAllocatesNothing) {
  obs::Tracer tracer;  // never enabled
  ScopedTracer install(&tracer);
  OBS_INSTANT("test", "tick");
  { OBS_SPAN("test", "span"); }
  EXPECT_EQ(tracer.recorded_events(), 0u);
  EXPECT_EQ(tracer.capacity(), 0u);  // ring never allocated
}

TEST(Tracer, RingWrapDropsOldestAndCounts) {
  obs::Tracer tracer;
  tracer.Enable(4);
  ScopedTracer install(&tracer);
  for (uint64_t i = 0; i < 10; ++i) OBS_INSTANT("test", "tick", "i", i);
  EXPECT_EQ(tracer.recorded_events(), 4u);
  EXPECT_EQ(tracer.dropped_events(), 6u);
  const auto events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().arg_val[0], 6u);  // oldest survivor
  EXPECT_EQ(events.back().arg_val[0], 9u);
}

TEST(Tracer, ClockSourceTimestamps) {
  obs::Tracer tracer;
  tracer.Enable(16);
  uint64_t clock = 100;
  tracer.SetClockSource(&clock);
  ScopedTracer install(&tracer);
  OBS_INSTANT("test", "a");
  clock = 250;
  OBS_INSTANT("test", "b");
  const auto events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].ts, 100u);
  EXPECT_EQ(events[1].ts, 250u);
}

TEST(Tracer, ExportIsValidJsonWithNestedPairs) {
  obs::Tracer tracer;
  tracer.Enable(64);
  ScopedTracer install(&tracer);
  {
    OBS_SPAN("test", "outer");
    {
      OBS_SPAN("test", "inner", "k", 7u);
      OBS_INSTANT("test", "tick");
    }
  }
  std::ostringstream out;
  tracer.ExportChromeJson(out);
  const std::string json = out.str();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  // B/E pairs nest: walk the emitted phases in order.
  int depth = 0;
  int max_depth = 0;
  size_t pos = 0;
  while ((pos = json.find("\"ph\":\"", pos)) != std::string::npos) {
    const char ph = json[pos + 6];
    if (ph == 'B') {
      ++depth;
      max_depth = std::max(max_depth, depth);
    } else if (ph == 'E') {
      --depth;
      ASSERT_GE(depth, 0) << "E without matching B";
    }
    ++pos;
  }
  EXPECT_EQ(depth, 0) << "unclosed span in export";
  EXPECT_EQ(max_depth, 2);
}

TEST(Tracer, ExportRebalancesWrappedRing) {
  obs::Tracer tracer;
  tracer.Enable(4);
  ScopedTracer install(&tracer);
  // 8 sequential spans: the ring keeps only the tail, whose first events
  // include orphan E records.
  for (int i = 0; i < 8; ++i) { OBS_SPAN("test", "span"); }
  std::ostringstream out;
  tracer.ExportChromeJson(out);
  const std::string json = out.str();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  int depth = 0;
  size_t pos = 0;
  while ((pos = json.find("\"ph\":\"", pos)) != std::string::npos) {
    const char ph = json[pos + 6];
    if (ph == 'B') ++depth;
    if (ph == 'E') {
      --depth;
      ASSERT_GE(depth, 0);
    }
    ++pos;
  }
  EXPECT_EQ(depth, 0);
}

TEST(Tracer, ExportClosesOpenSpanAtLastTimestamp) {
  obs::Tracer tracer;
  tracer.Enable(16);
  uint64_t clock = 1;
  tracer.SetClockSource(&clock);
  tracer.Begin("test", "open");
  clock = 99;
  tracer.Instant("test", "late");
  std::ostringstream out;
  tracer.ExportChromeJson(out);
  const std::string json = out.str();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  // The synthesized E must carry the last timestamp (99).
  const size_t e_pos = json.find("\"ph\":\"E\"");
  ASSERT_NE(e_pos, std::string::npos);
  EXPECT_NE(json.find("\"ts\":99", e_pos), std::string::npos) << json;
}

// --- Timeline -------------------------------------------------------------

TEST(Timeline, ExactModeMatchesRawTimestamps) {
  obs::Timeline timeline(8, 4);
  for (uint64_t t : {10u, 20u, 30u, 40u}) timeline.Add(t);
  EXPECT_FALSE(timeline.collapsed());
  EXPECT_EQ(timeline.total(), 4u);
  EXPECT_EQ(timeline.CountInRange(15, 35), 2u);
  EXPECT_EQ(timeline.samples().size(), 4u);
}

TEST(Timeline, RemoveLastUndoesAdd) {
  obs::Timeline timeline(8, 4);
  timeline.Add(10);
  timeline.Add(20);
  timeline.RemoveLast(20);
  EXPECT_EQ(timeline.total(), 1u);
  EXPECT_EQ(timeline.CountInRange(0, 100), 1u);
}

TEST(Timeline, CollapsesPastCapacityAndStaysBounded) {
  obs::Timeline timeline(16, 8);
  for (uint64_t t = 0; t < 10'000; ++t) timeline.Add(t * 100);
  EXPECT_TRUE(timeline.collapsed());
  EXPECT_EQ(timeline.total(), 10'000u);
  EXPECT_LE(timeline.bin_counts().size(), 8u);
  // Range counts remain approximately right: the full range is exact.
  EXPECT_EQ(timeline.CountInRange(0, UINT64_MAX), 10'000u);
  // Half the range lands within a bin width of 5000.
  const uint64_t half = timeline.CountInRange(0, 500'000);
  EXPECT_NEAR(static_cast<double>(half), 5000.0,
              static_cast<double>(timeline.bin_width()) / 100.0);
}

// --- Series ---------------------------------------------------------------

TEST(Series, ThinsByStrideDoubling) {
  obs::Series series(8);
  for (uint64_t t = 0; t < 1000; ++t) series.Add(t, t * 2);
  EXPECT_LE(series.points().size(), 8u);
  EXPECT_EQ(series.total_observations(), 1000u);
  EXPECT_GT(series.stride(), 1u);
  // Points stay in time order.
  for (size_t i = 1; i < series.points().size(); ++i) {
    EXPECT_LT(series.points()[i - 1].t, series.points()[i].t);
  }
}

// --- Metrics registry -----------------------------------------------------

TEST(MetricsRegistry, SnapshotAndDeltaRoundTrip) {
  uint64_t a = 5;
  uint64_t b = 100;
  obs::MetricsRegistry registry;
  registry.RegisterCounter("x.a", &a);
  registry.RegisterCounter("x.b", &b);
  registry.RegisterGauge("x.ratio", [&] {
    return static_cast<double>(a) / static_cast<double>(b);
  });
  const auto before = registry.TakeSnapshot();
  a += 7;
  b += 1;
  const auto after = registry.TakeSnapshot();
  const auto delta = obs::MetricsRegistry::Snapshot::Delta(before, after);
  EXPECT_EQ(delta.counters.at("x.a"), 7u);
  EXPECT_EQ(delta.counters.at("x.b"), 1u);
  // Snapshot equality: a fresh snapshot of unchanged state compares equal.
  EXPECT_TRUE(after == registry.TakeSnapshot());
  EXPECT_FALSE(before == after);
  // Both snapshots and deltas export as valid JSON.
  EXPECT_TRUE(JsonChecker(before.ToJson()).Valid());
  EXPECT_TRUE(JsonChecker(delta.ToJson()).Valid());
}

TEST(MetricsRegistry, FullJsonExport) {
  uint64_t counter = 3;
  util::Histogram hist(0, 100, 10);
  hist.Add(10);
  hist.Add(90);
  obs::Timeline timeline(8, 4);
  timeline.Add(1);
  obs::Series series(8);
  series.Add(1, 10);
  obs::MetricsRegistry registry;
  registry.RegisterCounter("c", &counter);
  registry.RegisterGauge("g", [] { return 0.5; });
  registry.RegisterHistogram("h", &hist);
  registry.RegisterTimeline("t", &timeline);
  registry.RegisterSeries("s", &series);
  registry.RegisterTable("tab", [] {
    return std::vector<std::pair<uint64_t, uint64_t>>{{0x400, 7}, {0x500, 3}};
  });
  EXPECT_EQ(registry.metric_count(), 6u);
  const std::string json = registry.ToJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  for (const char* needle :
       {"\"c\"", "\"g\"", "\"h\"", "\"t\"", "\"s\"", "\"tab\"", "p50", "p95",
        "p99"}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }
}

// --- End-to-end: observation does not perturb the simulation --------------

struct RunOutcome {
  uint64_t cycles;
  uint64_t instructions;
  obs::MetricsRegistry::Snapshot metrics;
  std::string output;
};

RunOutcome RunWorkload(bool with_tracing) {
  const auto* spec = workloads::FindWorkload("dijkstra");
  SC_CHECK(spec != nullptr);
  const image::Image img = workloads::CompileWorkload(*spec);
  softcache::SoftCacheConfig config;
  config.style = softcache::Style::kArm;
  config.tcache_bytes = 2048;
  config.prefetch.policy = softcache::PrefetchPolicy::kNextN;

  obs::Tracer tracer;
  if (with_tracing) {
    tracer.Enable(1 << 12);  // small ring: wraps, which must not matter
    obs::SetTracer(&tracer);
  }
  softcache::SoftCacheSystem system(img, config);
  system.SetInput(workloads::MakeInput("dijkstra", 1));
  obs::MetricsRegistry registry;
  system.RegisterMetrics(&registry);
  const vm::RunResult result = system.Run();
  obs::SetTracer(nullptr);
  EXPECT_EQ(result.reason, vm::StopReason::kHalted);
  if (with_tracing) {
    EXPECT_GT(tracer.recorded_events(), 0u);
  }
  return RunOutcome{result.cycles, result.instructions,
                    registry.TakeSnapshot(), system.OutputString()};
}

TEST(Observability, TracingDoesNotPerturbTheRun) {
  const RunOutcome off = RunWorkload(false);
  const RunOutcome on = RunWorkload(true);
  EXPECT_EQ(off.cycles, on.cycles);
  EXPECT_EQ(off.instructions, on.instructions);
  EXPECT_EQ(off.output, on.output);
  // Every registered counter and gauge, bit for bit.
  EXPECT_TRUE(off.metrics == on.metrics);
}

TEST(Observability, SystemTraceCoversMissPath) {
  const auto* spec = workloads::FindWorkload("dijkstra");
  SC_CHECK(spec != nullptr);
  const image::Image img = workloads::CompileWorkload(*spec);
  softcache::SoftCacheConfig config;
  config.style = softcache::Style::kArm;
  config.tcache_bytes = 2048;
  config.prefetch.policy = softcache::PrefetchPolicy::kNextN;

  obs::Tracer tracer;
  tracer.Enable(1 << 16);
  obs::SetTracer(&tracer);
  softcache::SoftCacheSystem system(img, config);
  // decode_fill is an interpreter event (the threaded engine replaces the
  // decode cache with superblock fills); pin the engine so this assertion
  // holds regardless of SOFTCACHE_ENGINE.
  system.machine().set_engine(vm::Engine::kInterp);
  system.SetInput(workloads::MakeInput("dijkstra", 1));
  const vm::RunResult result = system.Run();
  obs::SetTracer(nullptr);
  ASSERT_EQ(result.reason, vm::StopReason::kHalted);

  bool saw_tcmiss = false, saw_call = false, saw_tx = false, saw_rx = false,
       saw_handle = false, saw_translate = false, saw_install = false,
       saw_patch = false, saw_evict = false, saw_stage = false,
       saw_decode = false;
  for (const obs::TraceEvent& e : tracer.Snapshot()) {
    const std::string name = e.name;
    if (name == "tcmiss") saw_tcmiss = true;
    if (name == "call") saw_call = true;
    if (name == "tx") saw_tx = true;
    if (name == "rx") saw_rx = true;
    if (name == "handle") saw_handle = true;
    if (name == "translate") saw_translate = true;
    if (name == "install") saw_install = true;
    if (name == "patch") saw_patch = true;
    if (name == "evict") saw_evict = true;
    if (name == "stage") saw_stage = true;
    if (name == "decode_fill") saw_decode = true;
  }
  EXPECT_TRUE(saw_tcmiss);
  EXPECT_TRUE(saw_call);
  EXPECT_TRUE(saw_tx);
  EXPECT_TRUE(saw_rx);
  EXPECT_TRUE(saw_handle);
  EXPECT_TRUE(saw_translate);
  EXPECT_TRUE(saw_install);
  EXPECT_TRUE(saw_patch);
  EXPECT_TRUE(saw_evict);
  EXPECT_TRUE(saw_stage);
  EXPECT_TRUE(saw_decode);
}

TEST(Observability, SystemMetricsMatchStatsStructs) {
  const auto* spec = workloads::FindWorkload("dijkstra");
  SC_CHECK(spec != nullptr);
  const image::Image img = workloads::CompileWorkload(*spec);
  softcache::SoftCacheConfig config;
  config.tcache_bytes = 4096;
  softcache::SoftCacheSystem system(img, config);
  system.SetInput(workloads::MakeInput("dijkstra", 1));
  obs::MetricsRegistry registry;
  system.RegisterMetrics(&registry);
  const vm::RunResult result = system.Run();
  ASSERT_EQ(result.reason, vm::StopReason::kHalted);
  // The registry is a view: values are the stats structs' values, no copies.
  const auto snap = registry.TakeSnapshot();
  EXPECT_EQ(snap.counters.at("cc.blocks_translated"),
            system.stats().blocks_translated);
  EXPECT_EQ(snap.counters.at("cc.tcmiss_traps"), system.stats().tcmiss_traps);
  EXPECT_EQ(snap.counters.at("net.link.requests"), system.stats().net.requests);
  EXPECT_EQ(snap.counters.at("vm.cycles"), result.cycles);
  EXPECT_EQ(snap.counters.at("mc.requests_served"),
            system.mc().requests_served());
  // Miss latency histogram is populated and percentiles are ordered.
  const util::Histogram& lat = system.cc().miss_latency();
  EXPECT_EQ(lat.total(), system.stats().tcmiss_traps);
  EXPECT_LE(lat.Percentile(50), lat.Percentile(95));
  EXPECT_LE(lat.Percentile(95), lat.Percentile(99));
  const std::string json = registry.ToJson();
  EXPECT_TRUE(JsonChecker(json).Valid());
}

}  // namespace
}  // namespace sc
