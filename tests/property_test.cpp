// Property-based tests: generate random (but always-terminating) MiniC
// programs and require that execution under the software I-cache — any
// style, any size, any eviction policy — and under the software D-cache is
// bit-identical to direct execution. This is the repository's strongest
// correctness instrument: it exercises rewriting, patching, eviction,
// stack walking and cell forwarding on program shapes nobody hand-picked.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "dcache/dcache.h"
#include "minicc/compiler.h"
#include "net/channel.h"
#include "softcache/system.h"
#include "tests/program_gen.h"
#include "util/rng.h"
#include "vm/machine.h"

namespace sc {
namespace {

struct Baseline {
  int exit_code = 0;
  std::string output;
};

Baseline RunBaseline(const image::Image& img) {
  vm::Machine machine;
  machine.LoadImage(img);
  const vm::RunResult result = machine.Run(400'000'000);
  SC_CHECK(result.reason == vm::StopReason::kHalted)
      << "generated program failed natively: " << result.fault_message;
  return Baseline{result.exit_code, machine.OutputString()};
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

class RandomProgramTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomProgramTest, SoftCacheMatchesNativeEverywhere) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  ProgramGen gen(seed);
  const std::string source = gen.Generate();
  auto img = minicc::CompileMiniC(source, "gen.mc");
  ASSERT_TRUE(img.ok()) << img.error().ToString() << "\n" << source;
  const Baseline baseline = RunBaseline(*img);

  util::Rng cfg_rng(seed * 7919 + 13);
  // A grid of configurations, plus two fully random ones per seed.
  struct Cfg {
    softcache::Style style;
    uint32_t tcache;
    softcache::EvictPolicy evict;
    uint32_t trace_blocks = 1;
  };
  std::vector<Cfg> cfgs = {
      {softcache::Style::kSparc, 64 * 1024, softcache::EvictPolicy::kFifoRing},
      {softcache::Style::kSparc, 1024, softcache::EvictPolicy::kFifoRing},
      {softcache::Style::kSparc, 1024, softcache::EvictPolicy::kFlushAll},
      {softcache::Style::kSparc, 32 * 1024, softcache::EvictPolicy::kFifoRing, 4},
      {softcache::Style::kSparc, 1024, softcache::EvictPolicy::kFifoRing, 6},
      {softcache::Style::kArm, 32 * 1024, softcache::EvictPolicy::kFifoRing},
      {softcache::Style::kArm, 4096, softcache::EvictPolicy::kFifoRing},
  };
  for (int extra = 0; extra < 2; ++extra) {
    cfgs.push_back(Cfg{
        cfg_rng.Chance(1, 2) ? softcache::Style::kSparc : softcache::Style::kArm,
        static_cast<uint32_t>(cfg_rng.Range(2048, 16384)) & ~3u,
        cfg_rng.Chance(1, 2) ? softcache::EvictPolicy::kFifoRing
                             : softcache::EvictPolicy::kFlushAll,
        static_cast<uint32_t>(cfg_rng.Range(1, 4))});
  }

  for (const Cfg& cfg : cfgs) {
    softcache::SoftCacheConfig config;
    config.style = cfg.style;
    config.tcache_bytes = cfg.tcache;
    config.evict = cfg.evict;
    if (cfg.style == softcache::Style::kSparc) {
      config.max_trace_blocks = cfg.trace_blocks;
    }
    softcache::SoftCacheSystem system(*img, config);
    const vm::RunResult result = system.Run(4'000'000'000ull);
    ASSERT_EQ(result.reason, vm::StopReason::kHalted)
        << "style=" << (cfg.style == softcache::Style::kSparc ? "sparc" : "arm")
        << " tcache=" << cfg.tcache << " fault=" << result.fault_message
        << "\nseed=" << seed;
    EXPECT_EQ(result.exit_code, baseline.exit_code) << "seed=" << seed;
    EXPECT_EQ(system.OutputString(), baseline.output) << "seed=" << seed;
    system.cc().CheckInvariants();
  }
}

TEST_P(RandomProgramTest, DcacheMatchesNative) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  ProgramGen gen(seed ^ 0x5eed);
  const std::string source = gen.Generate();
  auto img = minicc::CompileMiniC(source, "gen.mc");
  ASSERT_TRUE(img.ok()) << img.error().ToString();
  const Baseline baseline = RunBaseline(*img);

  util::Rng cfg_rng(seed + 999);
  dcache::DCacheConfig config;
  config.dcache_blocks = static_cast<uint32_t>(cfg_rng.Range(4, 64));
  config.block_bytes = 1u << cfg_rng.Range(3, 6);
  config.scache_bytes = 1u << cfg_rng.Range(9, 13);
  config.prediction = static_cast<dcache::Prediction>(cfg_rng.Below(4));

  vm::Machine machine;
  machine.LoadImage(*img);
  softcache::MemoryController mc(*img, softcache::Style::kSparc, 64);
  net::Channel channel;
  dcache::DataCache cache(machine, mc, channel, config);
  cache.Attach();
  const vm::RunResult result = machine.Run(4'000'000'000ull);
  ASSERT_EQ(result.reason, vm::StopReason::kHalted)
      << result.fault_message << " seed=" << seed;
  EXPECT_EQ(result.exit_code, baseline.exit_code) << "seed=" << seed;
  EXPECT_EQ(machine.OutputString(), baseline.output) << "seed=" << seed;
}

TEST_P(RandomProgramTest, CombinedIcacheAndDcacheMatchesNative) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  ProgramGen gen(seed ^ 0xc0de);
  const std::string source = gen.Generate();
  auto img = minicc::CompileMiniC(source, "gen.mc");
  ASSERT_TRUE(img.ok()) << img.error().ToString();
  const Baseline baseline = RunBaseline(*img);

  softcache::SoftCacheConfig config;
  config.style = softcache::Style::kSparc;
  config.tcache_bytes = 4096;
  softcache::SoftCacheSystem system(*img, config);
  dcache::DCacheConfig dconfig;
  dconfig.local_base = system.cc().local_limit();
  dcache::DataCache cache(system.machine(), system.mc(), system.channel(),
                          dconfig);
  cache.Attach();
  const vm::RunResult result = system.Run(4'000'000'000ull);
  ASSERT_EQ(result.reason, vm::StopReason::kHalted)
      << result.fault_message << " seed=" << seed;
  EXPECT_EQ(result.exit_code, baseline.exit_code) << "seed=" << seed;
  EXPECT_EQ(system.OutputString(), baseline.output) << "seed=" << seed;
  system.cc().CheckInvariants();
}

TEST_P(RandomProgramTest, ComputedJumpProgramsMatchUnderSparc) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  ProgramGen gen(seed ^ 0xf00d);
  const std::string source = gen.Generate(/*arm_safe=*/false);
  auto img = minicc::CompileMiniC(source, "gen.mc");
  ASSERT_TRUE(img.ok()) << img.error().ToString() << "\n" << source;
  const Baseline baseline = RunBaseline(*img);

  for (const uint32_t tcache : {64u * 1024, 2048u}) {
    softcache::SoftCacheConfig config;
    config.tcache_bytes = tcache;
    softcache::SoftCacheSystem system(*img, config);
    // Run in slices, revalidating every rewriting-state invariant between
    // slices — catches transiently corrupt state that a final check could
    // miss after self-healing.
    vm::RunResult result;
    for (;;) {
      result = system.Run(20'000);
      system.cc().CheckInvariants();
      if (result.reason != vm::StopReason::kInstrLimit) break;
      ASSERT_LT(system.machine().instructions(), 400'000'000u);
    }
    ASSERT_EQ(result.reason, vm::StopReason::kHalted)
        << result.fault_message << " seed=" << seed;
    EXPECT_EQ(result.exit_code, baseline.exit_code) << "seed=" << seed;
    EXPECT_EQ(system.OutputString(), baseline.output) << "seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramTest, ::testing::Range(1, 21));

}  // namespace
}  // namespace sc
