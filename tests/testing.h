// Shared helpers for SoftCache tests.
#pragma once

#include <string>
#include <string_view>

#include <gtest/gtest.h>

#include "image/image.h"
#include "minicc/compiler.h"
#include "vm/machine.h"

namespace sc::testing {

struct RunOutcome {
  vm::RunResult result;
  std::string output;
};

// Compiles a MiniC program and runs it natively (no software cache).
inline RunOutcome CompileAndRun(std::string_view source, std::string_view input = "",
                                uint64_t max_instructions = 200'000'000) {
  auto img = minicc::CompileMiniC(source);
  if (!img.ok()) {
    ADD_FAILURE() << "compile error: " << img.error().ToString();
    return {};
  }
  vm::Machine machine;
  machine.LoadImage(*img);
  machine.SetInput(std::vector<uint8_t>(input.begin(), input.end()));
  RunOutcome out;
  out.result = machine.Run(max_instructions);
  out.output = machine.OutputString();
  return out;
}

// Compiles, runs, and expects a clean exit with the given code and output.
inline void ExpectProgram(std::string_view source, int expected_exit,
                          std::string_view expected_output = "",
                          std::string_view input = "") {
  const RunOutcome out = CompileAndRun(source, input);
  EXPECT_EQ(out.result.reason, vm::StopReason::kHalted)
      << "fault: " << out.result.fault_message;
  EXPECT_EQ(out.result.exit_code, expected_exit);
  if (!expected_output.empty() || expected_exit == 0) {
    EXPECT_EQ(out.output, expected_output);
  }
}

}  // namespace sc::testing
