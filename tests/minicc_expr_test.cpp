// Differential testing of MiniC expression semantics: random expression
// trees are evaluated by a host-side reference evaluator (with explicitly
// defined wrap/shift/division semantics matching the SRK32 VM) and by
// compiling + running the same expression; results must agree bit-exactly.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "minicc/compiler.h"
#include "util/rng.h"
#include "vm/machine.h"

namespace sc {
namespace {

// Expression tree with host-side evaluation. All arithmetic is wrapping
// 32-bit; division semantics follow the VM (INT_MIN / -1 wraps, x % -1 = 0);
// shift counts are masked to 5 bits; division by zero is avoided by
// construction (divisor forced odd via | 1).
struct Node {
  enum Kind { kConst, kVarA, kVarB, kAdd, kSub, kMul, kDiv, kRem, kAnd, kOr,
              kXor, kShl, kShrSigned, kNeg, kNot, kLess, kEq } kind;
  int32_t value = 0;  // kConst
  std::unique_ptr<Node> lhs;
  std::unique_ptr<Node> rhs;

  int32_t Eval(int32_t a, int32_t b) const {
    const auto wrap = [](int64_t v) {
      return static_cast<int32_t>(static_cast<uint32_t>(v));
    };
    switch (kind) {
      case kConst: return value;
      case kVarA: return a;
      case kVarB: return b;
      case kAdd: return wrap(static_cast<int64_t>(lhs->Eval(a, b)) + rhs->Eval(a, b));
      case kSub: return wrap(static_cast<int64_t>(lhs->Eval(a, b)) - rhs->Eval(a, b));
      case kMul:
        return wrap(static_cast<int64_t>(lhs->Eval(a, b)) *
                    static_cast<int64_t>(rhs->Eval(a, b)));
      case kDiv: {
        const int32_t x = lhs->Eval(a, b);
        const int32_t y = rhs->Eval(a, b) | 1;
        if (x == INT32_MIN && y == -1) return INT32_MIN;
        return x / y;
      }
      case kRem: {
        const int32_t x = lhs->Eval(a, b);
        const int32_t y = rhs->Eval(a, b) | 1;
        if (x == INT32_MIN && y == -1) return 0;
        return x % y;
      }
      case kAnd: return lhs->Eval(a, b) & rhs->Eval(a, b);
      case kOr: return lhs->Eval(a, b) | rhs->Eval(a, b);
      case kXor: return lhs->Eval(a, b) ^ rhs->Eval(a, b);
      case kShl:
        return wrap(static_cast<int64_t>(
            static_cast<uint32_t>(lhs->Eval(a, b))
            << (static_cast<uint32_t>(rhs->Eval(a, b)) & 31)));
      case kShrSigned:
        return lhs->Eval(a, b) >> (static_cast<uint32_t>(rhs->Eval(a, b)) & 31);
      case kNeg: return wrap(-static_cast<int64_t>(lhs->Eval(a, b)));
      case kNot: return ~lhs->Eval(a, b);
      case kLess: return lhs->Eval(a, b) < rhs->Eval(a, b) ? 1 : 0;
      case kEq: return lhs->Eval(a, b) == rhs->Eval(a, b) ? 1 : 0;
    }
    return 0;
  }

  std::string ToMiniC() const {
    switch (kind) {
      case kConst: {
        // INT_MIN has no literal form; spell extremes via hex cast.
        std::ostringstream s;
        if (value < 0) {
          s << "((int)0x" << std::hex << static_cast<uint32_t>(value) << ")";
        } else {
          s << value;
        }
        return s.str();
      }
      case kVarA: return "a";
      case kVarB: return "b";
      case kAdd: return "(" + lhs->ToMiniC() + " + " + rhs->ToMiniC() + ")";
      case kSub: return "(" + lhs->ToMiniC() + " - " + rhs->ToMiniC() + ")";
      case kMul: return "(" + lhs->ToMiniC() + " * " + rhs->ToMiniC() + ")";
      case kDiv: return "(" + lhs->ToMiniC() + " / (" + rhs->ToMiniC() + " | 1))";
      case kRem: return "(" + lhs->ToMiniC() + " % (" + rhs->ToMiniC() + " | 1))";
      case kAnd: return "(" + lhs->ToMiniC() + " & " + rhs->ToMiniC() + ")";
      case kOr: return "(" + lhs->ToMiniC() + " | " + rhs->ToMiniC() + ")";
      case kXor: return "(" + lhs->ToMiniC() + " ^ " + rhs->ToMiniC() + ")";
      case kShl: return "(" + lhs->ToMiniC() + " << (" + rhs->ToMiniC() + " & 31))";
      case kShrSigned:
        return "(" + lhs->ToMiniC() + " >> (" + rhs->ToMiniC() + " & 31))";
      case kNeg: return "(-" + lhs->ToMiniC() + ")";
      case kNot: return "(~" + lhs->ToMiniC() + ")";
      case kLess: return "(" + lhs->ToMiniC() + " < " + rhs->ToMiniC() + " ? 1 : 0)";
      case kEq: return "(" + lhs->ToMiniC() + " == " + rhs->ToMiniC() + " ? 1 : 0)";
    }
    return "0";
  }
};

std::unique_ptr<Node> RandomTree(util::Rng& rng, int depth) {
  auto node = std::make_unique<Node>();
  if (depth == 0) {
    switch (rng.Below(4)) {
      case 0: node->kind = Node::kVarA; break;
      case 1: node->kind = Node::kVarB; break;
      default: {
        node->kind = Node::kConst;
        // Mix small values and extremes.
        switch (rng.Below(5)) {
          case 0: node->value = INT32_MIN; break;
          case 1: node->value = INT32_MAX; break;
          case 2: node->value = -1; break;
          default: node->value = static_cast<int32_t>(rng.Range(-1000, 1000));
        }
        break;
      }
    }
    return node;
  }
  const Node::Kind kinds[] = {Node::kAdd, Node::kSub, Node::kMul, Node::kDiv,
                              Node::kRem, Node::kAnd, Node::kOr, Node::kXor,
                              Node::kShl, Node::kShrSigned, Node::kNeg,
                              Node::kNot, Node::kLess, Node::kEq};
  node->kind = kinds[rng.Below(std::size(kinds))];
  node->lhs = RandomTree(rng, depth - 1);
  if (node->kind != Node::kNeg && node->kind != Node::kNot) {
    node->rhs = RandomTree(rng, depth - 1);
  }
  return node;
}

class ExprFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(ExprFuzzTest, CompiledExpressionsMatchReferenceEvaluator) {
  util::Rng rng(static_cast<uint64_t>(GetParam()) * 31337 + 5);
  // Batch several expressions into one program (compile time dominates).
  constexpr int kExprs = 12;
  std::vector<std::unique_ptr<Node>> trees;
  std::ostringstream src;
  src << "uint check = 0;\n";
  src << "void emit(int v) { check = check * 31 + (uint)v; print_hex((uint)v); print_nl(); }\n";
  src << "int main() {\n";
  const int32_t a = static_cast<int32_t>(rng.Next32());
  const int32_t b = static_cast<int32_t>(rng.Next32());
  src << "  int a = (int)0x" << std::hex << static_cast<uint32_t>(a) << ";\n";
  src << "  int b = (int)0x" << std::hex << static_cast<uint32_t>(b) << ";\n";
  for (int i = 0; i < kExprs; ++i) {
    trees.push_back(RandomTree(rng, 1 + static_cast<int>(rng.Below(3))));
    src << "  emit(" << trees.back()->ToMiniC() << ");\n";
  }
  src << "  return 0;\n}\n";

  auto img = minicc::CompileMiniC(src.str(), "fuzz.mc");
  ASSERT_TRUE(img.ok()) << img.error().ToString() << "\n" << src.str();
  vm::Machine machine;
  machine.LoadImage(*img);
  const vm::RunResult result = machine.Run(50'000'000);
  ASSERT_EQ(result.reason, vm::StopReason::kHalted) << result.fault_message;

  // Expected output: one hex value per line.
  std::ostringstream expected;
  for (const auto& tree : trees) {
    const uint32_t v = static_cast<uint32_t>(tree->Eval(a, b));
    expected << std::hex << v << "\n";
  }
  // print_hex prints "0" for zero and no leading zeros, matching std::hex.
  EXPECT_EQ(machine.OutputString(), expected.str()) << src.str();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExprFuzzTest, ::testing::Range(1, 26));

}  // namespace
}  // namespace sc
