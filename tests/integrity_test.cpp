// Self-healing cache tests: seeded memory-fault injection, digest
// verify-on-use, the background scrub, and transparent healing.
//
// The headline property mirrors the repo's engine-differential proof: under
// a seeded bit-flip storm the guest-visible run (exit code, instruction
// count, cycle count, output bytes, fault message) is IDENTICAL on
// {interpreter, threaded} x {round-robin scheduler, host-thread pool}, the
// guest OUTPUT is identical to a fault-free run, and no corrupted
// instruction is ever executed — corruption shows up only as heal counters
// and extra miss traffic, never as changed guest behavior.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "minicc/compiler.h"
#include "softcache/cc.h"
#include "softcache/integrity.h"
#include "softcache/mc.h"
#include "softcache/protocol.h"
#include "softcache/system.h"
#include "util/check.h"
#include "vm/machine.h"

namespace sc {
namespace {

using softcache::FaultDomain;
using softcache::IntegrityConfig;
using softcache::MemFaultConfig;
using softcache::MemFaultInjector;
using softcache::MultiClientConfig;
using softcache::MultiClientSystem;
using softcache::SoftCacheConfig;
using softcache::SoftCacheSystem;
using vm::Engine;

// A program with enough distinct blocks, calls and churn to keep the tcache
// interesting for a few hundred scheduler quanta, emitting output whose
// bytes depend on every iteration (any corrupted instruction that executes
// shows up in the digest-like output stream).
constexpr const char* kStormProgram = R"(
  int a[512];
  int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
  int mix(int x) { return (x * 37 + 11) % 251; }
  int main() {
    int h = 0;
    for (int round = 0; round < 8; round = round + 1) {
      for (int i = 0; i < 512; i = i + 1) { a[i] = mix(a[i] + i + round); }
      for (int i = 0; i < 512; i = i + 1) { h = (h * 31 + a[i]) % 65521; }
      h = (h + fib(11)) % 65521;
      putchar(65 + h % 26);
    }
    return h % 200;
  }
)";

image::Image StormImage() {
  auto img = minicc::CompileMiniC(kStormProgram);
  SC_CHECK(img.ok()) << img.error().ToString();
  return std::move(*img);
}

// A small tcache forces eviction churn, so quarantined chunks really travel
// the full miss path again rather than sitting in a warm cache.
SoftCacheConfig StormConfig() {
  SoftCacheConfig config;
  config.tcache_bytes = 6 * 1024;
  config.integrity.enabled = true;
  config.integrity.scrub_every = 4;
  return config;
}

MemFaultConfig Storm(uint64_t seed, double rate) {
  MemFaultConfig mf;
  mf.seed = seed;
  mf.rate = rate;
  return mf;
}

struct StormRun {
  vm::RunResult result;
  std::string output;
  softcache::IntegrityStats integrity;
};

StormRun RunSolo(const image::Image& img, const SoftCacheConfig& config,
                 Engine engine,
                 const softcache::McServerConfig& server = {}) {
  SoftCacheSystem system(img, config, server);
  system.machine().set_engine(engine);
  StormRun run;
  run.result = system.Run();
  run.output = system.OutputString();
  run.integrity = system.stats().integrity;
  if (run.result.reason == vm::StopReason::kHalted) {
    system.cc().CheckInvariants();
  }
  return run;
}

void ExpectRunsIdentical(const StormRun& a, const StormRun& b,
                         const std::string& what) {
  EXPECT_EQ(static_cast<int>(a.result.reason),
            static_cast<int>(b.result.reason))
      << what;
  EXPECT_EQ(a.result.exit_code, b.result.exit_code) << what;
  EXPECT_EQ(a.result.instructions, b.result.instructions) << what;
  EXPECT_EQ(a.result.cycles, b.result.cycles) << what;
  EXPECT_EQ(a.result.fault_message, b.result.fault_message) << what;
  EXPECT_EQ(a.output, b.output) << what;
}

// ---------------------------------------------------------------------------
// The injector schedule: deterministic, per-domain independent streams
// ---------------------------------------------------------------------------

TEST(MemFaultInjector, ScheduleIsDeterministic) {
  const MemFaultConfig config = Storm(/*seed=*/42, /*rate=*/0.25);
  MemFaultInjector a(config, FaultDomain::kTcache);
  MemFaultInjector b(config, FaultDomain::kTcache);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.Due(nullptr), b.Due(nullptr)) << "tick " << i;
  }
  EXPECT_EQ(a.rng().Next64(), b.rng().Next64());
}

TEST(MemFaultInjector, DomainsDrawIndependentStreams) {
  const MemFaultConfig config = Storm(/*seed=*/42, /*rate=*/0.5);
  MemFaultInjector tcache(config, FaultDomain::kTcache);
  MemFaultInjector memo(config, FaultDomain::kMemo);
  int differing = 0;
  for (int i = 0; i < 200; ++i) {
    if (tcache.Due(nullptr) != memo.Due(nullptr)) ++differing;
  }
  // Same seed, different domain salt: the streams must not be the same
  // stream (identical streams would make enabling one domain replay the
  // other's schedule).
  EXPECT_GT(differing, 0);
}

TEST(MemFaultInjector, PeriodAndAfterKnobsFire) {
  MemFaultConfig periodic;
  periodic.period = 3;
  MemFaultInjector p(periodic, FaultDomain::kStaged);
  int fired = 0;
  for (int i = 0; i < 9; ++i) {
    if (p.Due(nullptr)) ++fired;
  }
  EXPECT_EQ(fired, 3);

  MemFaultConfig once;
  once.after = 5;
  MemFaultInjector o(once, FaultDomain::kStaged);
  fired = 0;
  for (int i = 0; i < 20; ++i) {
    if (o.Due(nullptr)) ++fired;
  }
  EXPECT_EQ(fired, 1);
}

// ---------------------------------------------------------------------------
// Solo storms: healed runs match clean runs byte-for-byte in output
// ---------------------------------------------------------------------------

TEST(Integrity, SoloInterpStormHealsTransparently) {
  const image::Image img = StormImage();
  const SoftCacheConfig clean_config = StormConfig();
  const StormRun clean = RunSolo(img, clean_config, Engine::kInterp);
  ASSERT_EQ(clean.result.reason, vm::StopReason::kHalted)
      << clean.result.fault_message;
  EXPECT_EQ(clean.integrity.flips_injected, 0u);
  EXPECT_EQ(clean.integrity.corruptions_detected, 0u);
  EXPECT_GT(clean.integrity.scrubs, 0u);  // integrity on => scrub runs

  SoftCacheConfig storm_config = StormConfig();
  storm_config.integrity.memfault = Storm(/*seed=*/7, /*rate=*/0.3);
  const StormRun storm = RunSolo(img, storm_config, Engine::kInterp);

  // Transparent healing: the guest's story is unchanged where it matters.
  EXPECT_EQ(storm.result.reason, vm::StopReason::kHalted)
      << storm.result.fault_message;
  EXPECT_EQ(storm.result.exit_code, clean.result.exit_code);
  EXPECT_EQ(storm.output, clean.output);

  // ... and the storm really happened: flips landed, every one was caught
  // before use, and quarantined chunks were reinstalled clean.
  EXPECT_GT(storm.integrity.flips_injected, 0u);
  EXPECT_GT(storm.integrity.corruptions_detected, 0u);
  EXPECT_GT(storm.integrity.quarantines, 0u);
  EXPECT_GT(storm.integrity.heals, 0u);
  EXPECT_EQ(storm.integrity.heal_failures, 0u);
}

TEST(Integrity, SoloStormIsSeedDeterministic) {
  const image::Image img = StormImage();
  SoftCacheConfig config = StormConfig();
  config.integrity.memfault = Storm(/*seed=*/11, /*rate=*/0.2);
  const StormRun a = RunSolo(img, config, Engine::kInterp);
  const StormRun b = RunSolo(img, config, Engine::kInterp);
  ExpectRunsIdentical(a, b, "same seed, same storm");
  EXPECT_EQ(a.integrity.flips_injected, b.integrity.flips_injected);
  EXPECT_EQ(a.integrity.quarantines, b.integrity.quarantines);
  EXPECT_GT(a.integrity.heals, 0u);
}

TEST(Integrity, StormBitIdenticalAcrossEngines) {
  const image::Image img = StormImage();
  SoftCacheConfig config = StormConfig();
  config.integrity.memfault = Storm(/*seed=*/13, /*rate=*/0.25);
  const StormRun interp = RunSolo(img, config, Engine::kInterp);
  const StormRun threaded = RunSolo(img, config, Engine::kThreaded);
  ASSERT_EQ(interp.result.reason, vm::StopReason::kHalted)
      << interp.result.fault_message;
  ExpectRunsIdentical(interp, threaded, "interp vs threaded under storm");
  EXPECT_GT(interp.integrity.heals, 0u);
  EXPECT_GT(threaded.integrity.heals, 0u);
  // The threaded engine's extra fault surface (decoded superblocks) was
  // exercised: its scrub invalidated at least one corrupted superblock.
  EXPECT_GT(threaded.integrity.sb_drops, 0u);
}

// ---------------------------------------------------------------------------
// The four-combo identity: engines x schedulers under one storm seed
// ---------------------------------------------------------------------------

TEST(Integrity, StormIdenticalAcrossEnginesAndSchedulers) {
  const image::Image img = StormImage();
  MultiClientConfig config;
  config.clients = 4;
  config.base = StormConfig();
  config.base.integrity.memfault = Storm(/*seed=*/23, /*rate=*/0.2);
  // Server memo faults ride along: heal order differs across schedulers,
  // but memo healing is guest-invisible so the identity must still hold.
  config.server.memfault = Storm(/*seed=*/29, /*rate=*/0.05);

  struct Combo {
    Engine engine;
    uint32_t host_threads;
    const char* name;
  };
  const Combo combos[] = {
      {Engine::kInterp, 0, "interp/round-robin"},
      {Engine::kThreaded, 0, "threaded/round-robin"},
      {Engine::kInterp, 3, "interp/host-threads"},
      {Engine::kThreaded, 3, "threaded/host-threads"},
  };

  std::vector<std::vector<StormRun>> per_combo;
  for (const Combo& combo : combos) {
    MultiClientConfig cfg = config;
    cfg.host_threads = combo.host_threads;
    MultiClientSystem fleet(img, cfg);
    for (uint32_t i = 0; i < cfg.clients; ++i) {
      fleet.machine(i).set_engine(combo.engine);
    }
    const auto results = fleet.RunAll();
    ASSERT_EQ(results.size(), cfg.clients) << combo.name;
    std::vector<StormRun> runs;
    for (uint32_t i = 0; i < cfg.clients; ++i) {
      ASSERT_EQ(results[i].reason, vm::StopReason::kHalted)
          << combo.name << " client " << i << ": "
          << results[i].fault_message;
      StormRun run;
      run.result = results[i];
      run.output = fleet.OutputString(i);
      run.integrity = fleet.cc(i).stats().integrity;
      EXPECT_GT(run.integrity.heals, 0u) << combo.name << " client " << i;
      runs.push_back(run);
    }
    per_combo.push_back(std::move(runs));
  }

  // Every combo must tell the same guest story, client by client.
  for (size_t c = 1; c < per_combo.size(); ++c) {
    for (uint32_t i = 0; i < config.clients; ++i) {
      ExpectRunsIdentical(per_combo[0][i], per_combo[c][i],
                          std::string(combos[c].name) + " client " +
                              std::to_string(i) + " vs " + combos[0].name);
    }
  }

  // ... and the same story as a fault-free fleet, in output and exit code
  // (instruction/cycle counts legitimately differ: healed chunks re-trap).
  MultiClientConfig clean_cfg = config;
  clean_cfg.base.integrity.memfault = MemFaultConfig{};
  clean_cfg.server.memfault = MemFaultConfig{};
  MultiClientSystem clean(img, clean_cfg);
  const auto clean_results = clean.RunAll();
  for (uint32_t i = 0; i < config.clients; ++i) {
    EXPECT_EQ(per_combo[0][i].result.exit_code, clean_results[i].exit_code);
    EXPECT_EQ(per_combo[0][i].output, clean.OutputString(i));
  }
}

// ---------------------------------------------------------------------------
// Per-domain coverage: staged chunks, content store, server memo
// ---------------------------------------------------------------------------

TEST(Integrity, StagedDomainDropsCorruptPrefetches) {
  const image::Image img = StormImage();
  SoftCacheConfig config = StormConfig();
  config.prefetch.policy = softcache::PrefetchPolicy::kNextN;
  const StormRun clean = RunSolo(img, config, Engine::kInterp);
  ASSERT_EQ(clean.result.reason, vm::StopReason::kHalted);

  SoftCacheConfig storm_config = config;
  storm_config.integrity.memfault = Storm(/*seed=*/31, /*rate=*/0.4);
  const StormRun storm = RunSolo(img, storm_config, Engine::kInterp);
  EXPECT_EQ(storm.result.reason, vm::StopReason::kHalted)
      << storm.result.fault_message;
  EXPECT_EQ(storm.output, clean.output);
  EXPECT_EQ(storm.result.exit_code, clean.result.exit_code);
  // A corrupted staged chunk is silently discarded (the demand fetch heals
  // it), never installed.
  EXPECT_GT(storm.integrity.staged_drops, 0u);
}

TEST(Integrity, StoreDomainDropsCorruptBodies) {
  const image::Image img = StormImage();
  MultiClientConfig config;
  config.clients = 3;
  config.base = StormConfig();
  config.base.shared_reply = true;
  config.base.integrity.memfault = Storm(/*seed=*/37, /*rate=*/0.5);

  MultiClientSystem fleet(img, config);
  const auto results = fleet.RunAll();

  MultiClientConfig clean_cfg = config;
  clean_cfg.base.integrity.memfault = MemFaultConfig{};
  MultiClientSystem clean(img, clean_cfg);
  const auto clean_results = clean.RunAll();

  uint64_t store_drops = 0;
  for (uint32_t i = 0; i < config.clients; ++i) {
    ASSERT_EQ(results[i].reason, vm::StopReason::kHalted)
        << "client " << i << ": " << results[i].fault_message;
    EXPECT_EQ(results[i].exit_code, clean_results[i].exit_code);
    EXPECT_EQ(fleet.OutputString(i), clean.OutputString(i));
    store_drops += fleet.cc(i).stats().integrity.store_drops;
  }
  // The shared content store was hit by the storm and every corrupted body
  // was dropped before a snooped install could use it.
  EXPECT_GT(store_drops, 0u);
}

TEST(Integrity, MemoDomainHealsFromPristineImage) {
  const image::Image img = StormImage();
  const SoftCacheConfig config = StormConfig();
  const StormRun clean = RunSolo(img, config, Engine::kInterp);

  softcache::McServerConfig server;
  server.memfault = Storm(/*seed=*/41, /*rate=*/0.3);
  const StormRun storm = RunSolo(img, config, Engine::kInterp, server);

  // Memo corruption is entirely server-side: the client's run is
  // bit-identical to clean, cycles included — healing happens before the
  // reply leaves the server.
  ExpectRunsIdentical(storm, clean, "memo storm vs clean");

  SoftCacheSystem probe(img, config, server);
  probe.Run();
  const auto& stats = probe.mc().server().stats();
  EXPECT_GT(stats.memo_flips_injected, 0u);
  EXPECT_GT(stats.memo_corruptions_detected, 0u);
  EXPECT_EQ(stats.memo_heals, stats.memo_corruptions_detected);
  EXPECT_GT(stats.memo_scrubs, 0u);
}

// ---------------------------------------------------------------------------
// The degradation ladder
// ---------------------------------------------------------------------------

TEST(Integrity, HealBudgetExhaustionDegradesToCleanFail) {
  const image::Image img = StormImage();
  SoftCacheConfig config = StormConfig();
  config.integrity.memfault = Storm(/*seed=*/5, /*rate=*/0.9);
  config.integrity.max_heal_attempts = 3;

  const StormRun a = RunSolo(img, config, Engine::kInterp);
  // A clean architectural fault (srun maps kFault to a nonzero process
  // exit), carrying the ladder's message — never a crash or silent
  // corruption.
  EXPECT_EQ(a.result.reason, vm::StopReason::kFault);
  EXPECT_NE(a.result.fault_message.find("heal budget exhausted"),
            std::string::npos)
      << a.result.fault_message;
  EXPECT_EQ(a.integrity.quarantines, 4u);  // budget + the fatal one
  EXPECT_EQ(a.integrity.heal_failures, 1u);

  // The failure itself is deterministic: same seed, same fault, same spot.
  const StormRun b = RunSolo(img, config, Engine::kInterp);
  ExpectRunsIdentical(a, b, "deterministic heal-budget fault");
}

TEST(Integrity, PoisonLadderDemotesRepeatOffenders) {
  const image::Image img = StormImage();
  const StormRun clean = RunSolo(img, StormConfig(), Engine::kThreaded);

  SoftCacheConfig config = StormConfig();
  config.integrity.memfault = Storm(/*seed=*/17, /*rate=*/0.35);
  config.integrity.poison_after = 1;  // first heal already poisons
  const StormRun storm = RunSolo(img, config, Engine::kThreaded);

  EXPECT_EQ(storm.result.reason, vm::StopReason::kHalted)
      << storm.result.fault_message;
  EXPECT_EQ(storm.result.exit_code, clean.result.exit_code);
  EXPECT_EQ(storm.output, clean.output);
  // Rung 1 engaged: healed chunks came back poisoned, and the threaded
  // engine ran them per-instruction instead of as multi-op superblocks.
  EXPECT_GT(storm.integrity.poisoned_blocks, 0u);
}

// ---------------------------------------------------------------------------
// Verify-on-use: a hand-planted flip is caught at the resolve boundary
// ---------------------------------------------------------------------------

TEST(Integrity, VerifyOnUseCatchesHandPlantedFlip) {
  const image::Image img = StormImage();
  SoftCacheConfig config = StormConfig();  // integrity on, no injector
  SoftCacheSystem system(img, config);

  // Warm the cache, then corrupt one resident tcache byte behind the
  // cache controller's back.
  auto first = system.Run(5'000);
  ASSERT_EQ(first.reason, vm::StopReason::kInstrLimit);
  const uint32_t victim = system.cc().AnyResidentTcacheByteForTest();
  ASSERT_NE(victim, 0u);
  system.machine().mem_data()[victim] ^= 0x40;

  // The run still completes with the correct story: the flip is detected
  // (by the next scrub or the next resolve of that block) and healed.
  const auto rest = system.Run();
  EXPECT_EQ(rest.reason, vm::StopReason::kHalted) << rest.fault_message;
  EXPECT_GE(system.stats().integrity.corruptions_detected, 1u);
  // Quarantined for sure; healed only if the program demands that chunk
  // again before halting (eviction churn may retire it first).
  EXPECT_GE(system.stats().integrity.quarantines, 1u);
  EXPECT_EQ(system.stats().integrity.flips_injected, 0u);

  const StormRun clean = RunSolo(img, config, Engine::kInterp);
  EXPECT_EQ(rest.exit_code, clean.result.exit_code);
  EXPECT_EQ(system.OutputString(), clean.output);
}

}  // namespace
}  // namespace sc
