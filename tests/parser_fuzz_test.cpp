// Front-end robustness: the lexer/parser/codegen pipeline must return a
// clean error (never crash, hang, or emit a bad image) on arbitrary input —
// random bytes, token soup, truncations of valid programs, and deeply
// nested expressions.
#include <gtest/gtest.h>

#include <string>

#include "minicc/compiler.h"
#include "sasm/assembler.h"
#include "util/rng.h"

namespace sc {
namespace {

// Any outcome is fine except a crash; if compilation "succeeds" the image
// must at least be structurally sane.
void MustNotCrash(const std::string& source) {
  minicc::CompileOptions options;
  options.link_runtime = false;  // garbage shouldn't pay runtime compile time
  auto img = minicc::CompileMiniC(source, "<fuzz>", options);
  if (img.ok()) {
    EXPECT_EQ(img->text.size() % 4, 0u);
    EXPECT_TRUE(img->ContainsText(img->entry));
  } else {
    EXPECT_FALSE(img.error().message.empty());
  }
}

TEST(ParserFuzz, RandomBytes) {
  util::Rng rng(777);
  for (int i = 0; i < 500; ++i) {
    std::string source(rng.Below(300), ' ');
    for (auto& c : source) {
      c = static_cast<char>(32 + rng.Below(95));  // printable ASCII
    }
    MustNotCrash(source);
  }
}

TEST(ParserFuzz, TokenSoup) {
  static const char* const kTokens[] = {
      "int",  "uint", "char", "void",  "struct", "if",    "else",  "while",
      "for",  "do",   "switch", "case", "default", "break", "return",
      "x",    "y",    "main", "f",     "123",    "0x1f",  "'a'",   "\"s\"",
      "(",    ")",    "{",    "}",     "[",      "]",     ";",     ",",
      "+",    "-",    "*",    "/",     "%",      "=",     "==",    "<",
      ">",    "&&",   "||",   "&",     "|",      "^",     "~",     "!",
      "->",   ".",    "?",    ":",     "sizeof", "++",    "--",    "<<",
  };
  util::Rng rng(778);
  for (int i = 0; i < 800; ++i) {
    std::string source;
    const uint64_t len = rng.Below(120);
    for (uint64_t t = 0; t < len; ++t) {
      source += kTokens[rng.Below(std::size(kTokens))];
      source += ' ';
    }
    MustNotCrash(source);
  }
}

TEST(ParserFuzz, TruncationsOfValidProgram) {
  const std::string valid = R"(
    struct point { int x; int y; };
    int table[8] = { 1, 2, 3 };
    int helper(int a, int b) { return a * b + table[a & 7]; }
    int main() {
      struct point p;
      p.x = 3;
      for (int i = 0; i < 10; i++) p.x += helper(i, p.x);
      return p.x & 127;
    }
  )";
  for (size_t len = 0; len <= valid.size(); len += 3) {
    MustNotCrash(valid.substr(0, len));
  }
}

TEST(ParserFuzz, DeepNesting) {
  // Deep parenthesization must error out or compile, not blow the stack.
  for (const int depth : {50, 500, 4000}) {
    std::string expr;
    for (int i = 0; i < depth; ++i) expr += "(1+";
    expr += "1";
    for (int i = 0; i < depth; ++i) expr += ")";
    MustNotCrash("int main() { return " + expr + "; }");
  }
}

TEST(ParserFuzz, DeepBlockNesting) {
  std::string body;
  for (int i = 0; i < 2000; ++i) body += "{";
  body += "int x = 1;";
  for (int i = 0; i < 2000; ++i) body += "}";
  MustNotCrash("int main() { " + body + " return 0; }");
}

TEST(AssemblerFuzz, RandomLines) {
  util::Rng rng(779);
  static const char* const kWords[] = {
      "add", "lw",  "sw",   "beq",  "jal",  "li",   "la",  ".word",
      ".data", ".text", ".func", ".align", "t0",  "sp",  "ra",  "zero",
      "label:", "0x10", "-5",  ",",   "(",    ")",   "\"s\"",
  };
  for (int i = 0; i < 600; ++i) {
    std::string source;
    const uint64_t lines = rng.Below(20);
    for (uint64_t l = 0; l < lines; ++l) {
      const uint64_t words = rng.Below(6);
      for (uint64_t w = 0; w < words; ++w) {
        source += kWords[rng.Below(std::size(kWords))];
        source += ' ';
      }
      source += '\n';
    }
    auto img = sasm::Assemble(source);
    if (!img.ok()) {
      EXPECT_FALSE(img.error().message.empty());
    }
  }
}

}  // namespace
}  // namespace sc
