// VM semantics tests: per-opcode behaviour, faults, the cycle model,
// syscalls, hook points and execution-range enforcement.
#include <gtest/gtest.h>

#include "sasm/assembler.h"
#include "vm/machine.h"

namespace sc {
namespace {

struct VmRun {
  vm::RunResult result;
  vm::Machine machine;
};

// Assembles and runs; the machine is returned for state inspection.
std::unique_ptr<VmRun> RunAsm(std::string_view asm_source, std::string_view input = "") {
  auto img = sasm::Assemble(asm_source);
  SC_CHECK(img.ok()) << img.error().ToString();
  auto run = std::make_unique<VmRun>();
  run->machine.LoadImage(*img);
  run->machine.SetInput(std::vector<uint8_t>(input.begin(), input.end()));
  run->result = run->machine.Run(1'000'000);
  return run;
}

int RunExit(std::string_view asm_source) {
  const auto run = RunAsm(asm_source);
  SC_CHECK(run->result.reason == vm::StopReason::kHalted)
      << run->result.fault_message;
  return run->result.exit_code;
}

TEST(VmAlu, SignedUnsignedOps) {
  EXPECT_EQ(RunExit(R"(
    _start:
      li t0, -8
      li t1, 3
      div t2, t0, t1     # -2
      rem t3, t0, t1     # -2
      add a0, t2, t3     # -4
      neg a0, a0         # 4
      sys 0
  )"), 4);
  EXPECT_EQ(RunExit(R"(
    _start:
      li t0, -8          # 0xfffffff8
      li t1, 16
      divu t2, t0, t1    # 0x0ffffff f...
      srli t2, t2, 24    # 0x0f
      mv a0, t2
      sys 0
  )"), 0x0f);
}

TEST(VmAlu, ShiftsMaskTo5Bits) {
  EXPECT_EQ(RunExit(R"(
    _start:
      li t0, 1
      li t1, 33          # shift amount masks to 1
      sll t2, t0, t1
      mv a0, t2
      sys 0
  )"), 2);
}

TEST(VmAlu, SltVariants) {
  EXPECT_EQ(RunExit(R"(
    _start:
      li t0, -1
      li t1, 1
      slt t2, t0, t1     # 1 (signed)
      sltu t3, t0, t1    # 0 (0xffffffff not < 1)
      slli t2, t2, 1
      add a0, t2, t3     # 2
      sys 0
  )"), 2);
}

TEST(VmAlu, DivideByZeroFaults) {
  const auto run = RunAsm("_start: li t0, 1\n li t1, 0\n div t2, t0, t1\n halt\n");
  EXPECT_EQ(run->result.reason, vm::StopReason::kFault);
  EXPECT_NE(run->result.fault_message.find("division by zero"), std::string::npos);
}

TEST(VmAlu, IntMinDividedByMinusOneWraps) {
  EXPECT_EQ(RunExit(R"(
    _start:
      li t0, 0x80000000
      li t1, -1
      div t2, t0, t1     # wraps to INT_MIN
      srli a0, t2, 28    # 0x8
      sys 0
  )"), 8);
}

TEST(VmMemory, LoadStoreAllWidths) {
  EXPECT_EQ(RunExit(R"(
    .bss
    buf: .space 16
    .text
    _start:
      la t0, buf
      li t1, 0x80
      sb t1, 0(t0)
      lbu t2, 0(t0)      # 0x80 zero-extended
      lb t3, 0(t0)       # sign-extended -128
      add t4, t2, t3     # 0
      li t1, 0x8000
      sh t1, 4(t0)
      lhu t5, 4(t0)      # 0x8000
      lh t6, 4(t0)       # -0x8000
      add t5, t5, t6     # 0
      add a0, t4, t5
      addi a0, a0, 9
      sys 0
  )"), 9);
}

TEST(VmMemory, MisalignedAccessFaults) {
  const auto run = RunAsm(R"(
    _start:
      li t0, 0x100002
      lw t1, 0(t0)
      halt
  )");
  EXPECT_EQ(run->result.reason, vm::StopReason::kFault);
  EXPECT_NE(run->result.fault_message.find("misaligned"), std::string::npos);
}

TEST(VmMemory, NullGuardFaults) {
  const auto run = RunAsm("_start: lw t0, 0(zero)\n halt\n");
  EXPECT_EQ(run->result.reason, vm::StopReason::kFault);
  EXPECT_NE(run->result.fault_message.find("null-guard"), std::string::npos);
}

TEST(VmMemory, OutOfRangeFaults) {
  const auto run = RunAsm(R"(
    _start:
      li t0, 0x7fffff00
      sw t0, 0(t0)
      halt
  )");
  EXPECT_EQ(run->result.reason, vm::StopReason::kFault);
  EXPECT_NE(run->result.fault_message.find("out-of-range"), std::string::npos);
}

TEST(VmControl, JalLinksAndJalrReturns) {
  EXPECT_EQ(RunExit(R"(
    _start:
      jal sub
      mv a0, rv
      sys 0
    sub:
      li rv, 77
      ret
  )"), 77);
}

TEST(VmControl, RegisterZeroIsImmutable) {
  EXPECT_EQ(RunExit(R"(
    _start:
      li t0, 55
      add zero, t0, t0
      mv a0, zero
      sys 0
  )"), 0);
}

TEST(VmControl, IllegalInstructionFaults) {
  const auto run = RunAsm(".text\n_start: .word 0xffffffff\n");
  EXPECT_EQ(run->result.reason, vm::StopReason::kFault);
  EXPECT_NE(run->result.fault_message.find("illegal"), std::string::npos);
}

TEST(VmControl, TcMissWithoutHandlerFaults) {
  // TCMISS is opcode 31 in the J format: craft it via .word.
  auto img = sasm::Assemble("_start: .word 0x7c000000\n");
  ASSERT_TRUE(img.ok());
  vm::Machine machine;
  machine.LoadImage(*img);
  const auto result = machine.Run(100);
  EXPECT_EQ(result.reason, vm::StopReason::kFault);
  EXPECT_NE(result.fault_message.find("no trap handler"), std::string::npos);
}

TEST(VmControl, InstructionLimitStops) {
  auto img = sasm::Assemble("_start: j _start\n");
  ASSERT_TRUE(img.ok());
  vm::Machine machine;
  machine.LoadImage(*img);
  const auto result = machine.Run(1000);
  EXPECT_EQ(result.reason, vm::StopReason::kInstrLimit);
  EXPECT_EQ(result.instructions, 1000u);
}

TEST(VmSyscalls, EchoRoundTrip) {
  const auto run = RunAsm(R"(
    _start:
      sys 2              # getchar
      mv a0, rv
      sys 1              # putchar
      li a0, 0
      sys 0
  )", "Q");
  EXPECT_EQ(run->result.reason, vm::StopReason::kHalted);
  EXPECT_EQ(run->machine.OutputString(), "Q");
}

TEST(VmSyscalls, GetcharEofIsMinusOne) {
  EXPECT_EQ(RunExit(R"(
    _start:
      sys 2
      li t0, -1
      bne rv, t0, bad
      li a0, 1
      sys 0
    bad:
      li a0, 0
      sys 0
  )"), 1);
}

TEST(VmSyscalls, BrkGrowsHeap) {
  EXPECT_EQ(RunExit(R"(
    _start:
      li a0, 64
      sys 5              # sbrk(64) -> old break
      mv t0, rv
      li a0, 64
      sys 5              # again
      sub t1, rv, t0     # 64 apart
      mv a0, t1
      sys 0
  )"), 64);
}

TEST(VmSyscalls, CyclesAdvance) {
  EXPECT_EQ(RunExit(R"(
    _start:
      sys 6
      mv t0, rv
      nop
      nop
      sys 6
      sltu a0, t0, rv    # later reading is larger
      sys 0
  )"), 1);
}

TEST(VmSyscalls, UnknownSyscallFaults) {
  const auto run = RunAsm("_start: sys 999\n halt\n");
  EXPECT_EQ(run->result.reason, vm::StopReason::kFault);
  EXPECT_NE(run->result.fault_message.find("unknown syscall"), std::string::npos);
}

TEST(VmCostModel, MulDivCostMore) {
  const auto cheap = RunAsm("_start: add t0, t1, t2\n halt\n");
  const auto mul = RunAsm("_start: mul t0, t1, t2\n halt\n");
  const auto div = RunAsm("_start: li t1, 1\n div t0, t1, t1\n halt\n");
  EXPECT_GT(mul->result.cycles, cheap->result.cycles);
  EXPECT_GT(div->result.cycles, mul->result.cycles);
}

TEST(VmExecRange, RestrictionEnforced) {
  auto img = sasm::Assemble("_start: nop\n nop\n halt\n");
  ASSERT_TRUE(img.ok());
  vm::Machine machine;
  machine.LoadImage(*img);
  machine.SetExecRange(0x2000000, 0x2001000);  // text is far outside
  const auto result = machine.Run(100);
  EXPECT_EQ(result.reason, vm::StopReason::kFault);
  EXPECT_NE(result.fault_message.find("outside permitted range"), std::string::npos);
}

TEST(VmHooks, FetchObserverSeesEveryPc) {
  struct Counter : vm::FetchObserver {
    uint64_t count = 0;
    uint32_t first = 0;
    void OnFetch(uint32_t pc) override {
      if (count == 0) first = pc;
      ++count;
    }
  };
  auto img = sasm::Assemble("_start: nop\n nop\n nop\n halt\n");
  ASSERT_TRUE(img.ok());
  vm::Machine machine;
  machine.LoadImage(*img);
  Counter counter;
  machine.set_fetch_observer(&counter);
  const auto result = machine.Run(100);
  EXPECT_EQ(result.reason, vm::StopReason::kHalted);
  EXPECT_EQ(counter.count, result.instructions);
  EXPECT_EQ(counter.first, img->entry);
}

TEST(VmHooks, DataHookRedirectsAccesses) {
  struct Redirect : vm::DataHook {
    uint32_t hits = 0;
    uint32_t Translate(vm::Machine& m, uint32_t vaddr, uint32_t size,
                       bool is_store) override {
      (void)m; (void)size; (void)is_store;
      ++hits;
      return vaddr + 0x100;  // shift the window
    }
  };
  auto img = sasm::Assemble(R"(
    .bss
    spot: .space 512
    .text
    _start:
      la t0, spot
      li t1, 42
      sw t1, 0(t0)       # hooked: actually writes spot+0x100
      lw a0, 256(t0)     # unhooked address range? also hooked; reads back
      sys 0
  )");
  ASSERT_TRUE(img.ok());
  vm::Machine machine;
  machine.LoadImage(*img);
  Redirect hook;
  const image::Symbol* spot = img->FindSymbol("spot");
  ASSERT_NE(spot, nullptr);
  machine.SetDataHook(&hook, spot->addr, spot->addr + 4);  // only first word hooked
  const auto result = machine.Run(100);
  EXPECT_EQ(result.reason, vm::StopReason::kHalted);
  EXPECT_EQ(hook.hits, 1u);                   // only the sw was in range
  EXPECT_EQ(result.exit_code, 42);            // read at +0x100 sees the value
}

}  // namespace
}  // namespace sc
