// MiniC runtime library tests — especially the soft-float routines, which
// are verified against the host's IEEE-754 hardware across random and
// corner-case operand sets (allowing 1 ulp slack and flush-to-zero).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "minicc/compiler.h"
#include "util/rng.h"
#include "vm/machine.h"

namespace sc {
namespace {

// Runs a batch program: reads [u32 count] then count records of
// [u8 op][u32 a][u32 b], applies the soft-float op, writes u32 results.
constexpr const char* kFloatHarness = R"(
int read_u32() {
  char b[4];
  if (read_bytes(b, 4) != 4) return -1;
  return (int)b[0] | ((int)b[1] << 8) | ((int)b[2] << 16) | ((int)b[3] << 24);
}
void write_u32(uint v) {
  char b[4];
  b[0] = (char)(v & 255);
  b[1] = (char)((v >> 8) & 255);
  b[2] = (char)((v >> 16) & 255);
  b[3] = (char)((v >> 24) & 255);
  write_bytes(b, 4);
}
int main() {
  int n = read_u32();
  int i;
  for (i = 0; i < n; i++) {
    int op = getchar();
    uint a = (uint)read_u32();
    uint b = (uint)read_u32();
    uint r = 0;
    if (op == 0) r = fadd(a, b);
    else if (op == 1) r = fsub(a, b);
    else if (op == 2) r = fmul(a, b);
    else if (op == 3) r = fdiv(a, b);
    else if (op == 4) r = (uint)fcmp(a, b);
    else if (op == 5) r = itof((int)a);
    else if (op == 6) r = (uint)ftoi(a);
    else if (op == 7) r = fsqrt(a);
    write_u32(r);
  }
  return 0;
}
)";

uint32_t FloatBits(float f) {
  uint32_t bits;
  std::memcpy(&bits, &f, 4);
  return bits;
}
float BitsFloat(uint32_t bits) {
  float f;
  std::memcpy(&f, &bits, 4);
  return f;
}

struct FloatCase {
  uint8_t op;
  uint32_t a;
  uint32_t b;
};

std::vector<uint32_t> RunFloatBatch(const std::vector<FloatCase>& cases) {
  static const image::Image img = [] {
    auto compiled = minicc::CompileMiniC(kFloatHarness);
    SC_CHECK(compiled.ok()) << compiled.error().ToString();
    return std::move(*compiled);
  }();
  std::vector<uint8_t> input;
  const auto put32 = [&input](uint32_t v) {
    input.push_back(static_cast<uint8_t>(v));
    input.push_back(static_cast<uint8_t>(v >> 8));
    input.push_back(static_cast<uint8_t>(v >> 16));
    input.push_back(static_cast<uint8_t>(v >> 24));
  };
  put32(static_cast<uint32_t>(cases.size()));
  for (const FloatCase& c : cases) {
    input.push_back(c.op);
    put32(c.a);
    put32(c.b);
  }
  vm::Machine machine;
  machine.LoadImage(img);
  machine.SetInput(std::move(input));
  const vm::RunResult result = machine.Run(4'000'000'000ull);
  SC_CHECK(result.reason == vm::StopReason::kHalted) << result.fault_message;
  const auto& out = machine.output();
  SC_CHECK_EQ(out.size(), cases.size() * 4);
  std::vector<uint32_t> values(cases.size());
  std::memcpy(values.data(), out.data(), out.size());
  return values;
}

// Within-1-ulp comparison with flush-to-zero semantics.
bool CloseEnough(uint32_t soft, float expected) {
  if (std::isnan(expected)) {
    return ((soft & 0x7f800000) == 0x7f800000) && (soft & 0x007fffff) != 0;
  }
  const uint32_t want = FloatBits(expected);
  if (soft == want) return true;
  // Flush-to-zero: denormal expected -> zero accepted.
  if (std::fpclassify(expected) == FP_SUBNORMAL && (soft & 0x7fffffff) == 0) {
    return true;
  }
  if ((soft & 0x7f800000) == 0x7f800000 || (want & 0x7f800000) == 0x7f800000) {
    return soft == want;  // infinities must be exact
  }
  const int64_t diff = static_cast<int64_t>(soft) - static_cast<int64_t>(want);
  return (soft >> 31) == (want >> 31) && diff >= -1 && diff <= 1;
}

float NiceRandomFloat(util::Rng& rng) {
  // Normal-range magnitudes from 1e-18 to 1e18 with random sign.
  const double mag = std::pow(10.0, rng.NextDouble() * 36.0 - 18.0);
  const double sign = rng.Chance(1, 2) ? -1.0 : 1.0;
  return static_cast<float>(sign * mag * (0.5 + rng.NextDouble()));
}

TEST(SoftFloat, AddSubMulDivRandom) {
  util::Rng rng(2024);
  std::vector<FloatCase> cases;
  std::vector<float> expect;
  for (int i = 0; i < 400; ++i) {
    const float a = NiceRandomFloat(rng);
    const float b = NiceRandomFloat(rng);
    const uint8_t op = static_cast<uint8_t>(rng.Below(4));
    cases.push_back({op, FloatBits(a), FloatBits(b)});
    switch (op) {
      case 0: expect.push_back(a + b); break;
      case 1: expect.push_back(a - b); break;
      case 2: expect.push_back(a * b); break;
      default: expect.push_back(a / b); break;
    }
  }
  const auto results = RunFloatBatch(cases);
  for (size_t i = 0; i < cases.size(); ++i) {
    EXPECT_TRUE(CloseEnough(results[i], expect[i]))
        << "op " << int(cases[i].op) << " a=" << BitsFloat(cases[i].a)
        << " b=" << BitsFloat(cases[i].b) << " soft=0x" << std::hex << results[i]
        << " want=0x" << FloatBits(expect[i]);
  }
}

TEST(SoftFloat, SpecialValues) {
  const uint32_t inf = 0x7f800000;
  const uint32_t ninf = 0xff800000;
  const uint32_t nan = 0x7fc00000;
  const uint32_t one = FloatBits(1.0f);
  const uint32_t zero = 0;
  std::vector<FloatCase> cases = {
      {0, inf, one},    // inf + 1 = inf
      {0, inf, ninf},   // inf + -inf = nan
      {2, zero, inf},   // 0 * inf = nan
      {3, one, zero},   // 1 / 0 = inf
      {3, zero, zero},  // 0 / 0 = nan
      {0, nan, one},    // nan propagates
      {1, one, one},    // 1 - 1 = +0
      {2, FloatBits(-1.0f), zero},  // -1 * 0 = -0
  };
  const auto r = RunFloatBatch(cases);
  EXPECT_EQ(r[0], inf);
  EXPECT_EQ(r[1] & 0x7fc00000u, 0x7fc00000u);  // some NaN
  EXPECT_EQ(r[2] & 0x7fc00000u, 0x7fc00000u);
  EXPECT_EQ(r[3], inf);
  EXPECT_EQ(r[4] & 0x7fc00000u, 0x7fc00000u);
  EXPECT_EQ(r[5] & 0x7fc00000u, 0x7fc00000u);
  EXPECT_EQ(r[6], 0u);           // +0
  EXPECT_EQ(r[7], 0x80000000u);  // -0
}

TEST(SoftFloat, Comparisons) {
  std::vector<FloatCase> cases = {
      {4, FloatBits(1.0f), FloatBits(2.0f)},
      {4, FloatBits(2.0f), FloatBits(1.0f)},
      {4, FloatBits(3.5f), FloatBits(3.5f)},
      {4, FloatBits(-1.0f), FloatBits(1.0f)},
      {4, FloatBits(-1.0f), FloatBits(-2.0f)},
      {4, 0x80000000u, 0u},  // -0 == +0
      {4, 0x7fc00000u, FloatBits(1.0f)},  // nan -> -2
  };
  const auto r = RunFloatBatch(cases);
  EXPECT_EQ(static_cast<int32_t>(r[0]), -1);
  EXPECT_EQ(static_cast<int32_t>(r[1]), 1);
  EXPECT_EQ(static_cast<int32_t>(r[2]), 0);
  EXPECT_EQ(static_cast<int32_t>(r[3]), -1);
  EXPECT_EQ(static_cast<int32_t>(r[4]), 1);
  EXPECT_EQ(static_cast<int32_t>(r[5]), 0);
  EXPECT_EQ(static_cast<int32_t>(r[6]), -2);
}

TEST(SoftFloat, IntConversions) {
  util::Rng rng(31);
  std::vector<FloatCase> cases;
  std::vector<uint32_t> expect;
  for (int i = 0; i < 200; ++i) {
    const int32_t v = static_cast<int32_t>(rng.Next32());
    cases.push_back({5, static_cast<uint32_t>(v), 0});
    expect.push_back(FloatBits(static_cast<float>(v)));
  }
  // ftoi on representative values (exactly convertible).
  for (const float f : {0.0f, 1.0f, -1.0f, 123.75f, -4096.5f, 2.0e9f, -2.0e9f}) {
    cases.push_back({6, FloatBits(f), 0});
    expect.push_back(static_cast<uint32_t>(static_cast<int64_t>(
        std::max(-2147483648.0, std::min(2147483647.0, std::trunc(double(f)))))));
  }
  const auto r = RunFloatBatch(cases);
  for (size_t i = 0; i < cases.size(); ++i) {
    if (cases[i].op == 5) {
      EXPECT_TRUE(CloseEnough(r[i], BitsFloat(expect[i]))) << i;
    } else {
      EXPECT_EQ(r[i], expect[i]) << "ftoi case " << i;
    }
  }
}

TEST(SoftFloat, Sqrt) {
  std::vector<FloatCase> cases;
  std::vector<float> expect;
  for (const float f : {4.0f, 2.0f, 100.0f, 0.25f, 1e6f, 123.456f}) {
    cases.push_back({7, FloatBits(f), 0});
    expect.push_back(std::sqrt(f));
  }
  const auto r = RunFloatBatch(cases);
  for (size_t i = 0; i < cases.size(); ++i) {
    // Newton iteration: allow a few ulps.
    const float got = BitsFloat(r[i]);
    EXPECT_NEAR(got, expect[i], std::abs(expect[i]) * 1e-5f) << expect[i];
  }
}

// ---- non-float runtime pieces ----

void ExpectExit(std::string_view source, int expected) {
  auto img = minicc::CompileMiniC(source);
  ASSERT_TRUE(img.ok()) << img.error().ToString();
  vm::Machine machine;
  machine.LoadImage(*img);
  const vm::RunResult result = machine.Run(200'000'000);
  ASSERT_EQ(result.reason, vm::StopReason::kHalted) << result.fault_message;
  EXPECT_EQ(result.exit_code, expected) << machine.OutputString();
}

TEST(RuntimeExtra, StringSearch) {
  ExpectExit(R"(
    int main() {
      char *s = "the quick brown fox";
      if (strstr_(s, "quick") != &s[4]) return 1;
      if (strstr_(s, "missing") != 0) return 2;
      if (strchr_(s, 'q') != &s[4]) return 3;
      if (strrchr_(s, 'o') != &s[17]) return 4;
      if (memchr_(s, 'b', 19) != &s[10]) return 5;
      return 0;
    }
  )", 0);
}

TEST(RuntimeExtra, StrtolBases) {
  ExpectExit(R"(
    int main() {
      if (strtol_("123", 10) != 123) return 1;
      if (strtol_("-45", 10) != -45) return 2;
      if (strtol_("0x1f", 0) != 31) return 3;
      if (strtol_("777", 8) != 511) return 4;
      if (strtol_("  42", 10) != 42) return 5;
      if (strtol_("ff", 16) != 255) return 6;
      return 0;
    }
  )", 0);
}

TEST(RuntimeExtra, Crc32MatchesReference) {
  // CRC-32("123456789") = 0xcbf43926, the standard check value.
  ExpectExit(R"(
    int main() {
      uint c = crc32("123456789", 9);
      return c == 0xcbf43926 ? 0 : 1;
    }
  )", 0);
}

TEST(RuntimeExtra, QsortAndBsearch) {
  ExpectExit(R"(
    int data[64];
    int main() {
      srand(7);
      for (int i = 0; i < 64; i++) data[i] = rand() % 1000;
      qsort_ints(data, 64);
      for (int i = 1; i < 64; i++) {
        if (data[i - 1] > data[i]) return 1;
      }
      for (int i = 0; i < 64; i++) {
        if (bsearch_int(data, 64, data[i]) < 0) return 2;
      }
      if (bsearch_int(data, 64, -5) != -1) return 3;
      return 0;
    }
  )", 0);
}

TEST(RuntimeExtra, QsortWithComparator) {
  ExpectExit(R"(
    int desc(int a, int b) { return b - a; }
    int data[32];
    int main() {
      for (int i = 0; i < 32; i++) data[i] = (i * 37) % 100;
      qsort_by(data, 32, desc);
      for (int i = 1; i < 32; i++) {
        if (data[i - 1] < data[i]) return 1;
      }
      return 0;
    }
  )", 0);
}

TEST(RuntimeExtra, NumericHelpers) {
  ExpectExit(R"(
    int main() {
      if (gcd(48, 36) != 12) return 1;
      if (ipow(3, 5) != 243) return 2;
      if (isqrt(1000000) != 1000) return 3;
      if (isqrt(999999) != 999) return 4;
      if (umulhi(0x80000000, 4) != 2) return 5;
      return 0;
    }
  )", 0);
}

TEST(RuntimeExtra, FormatInt) {
  ExpectExit(R"(
    int main() {
      char buf[36];
      format_int(buf, -1234, 10);
      if (strcmp(buf, "-1234") != 0) return 1;
      format_int(buf, 255, 16);
      if (strcmp(buf, "ff") != 0) return 2;
      format_int(buf, 5, 2);
      if (strcmp(buf, "101") != 0) return 3;
      return 0;
    }
  )", 0);
}

TEST(RuntimeExtra, MiniPrintf) {
  auto img = minicc::CompileMiniC(R"MC(
    int main() {
      mini_printf("x=%d hex=%x s=%s\n", 42, 255, (int)"hi");
      return 0;
    }
  )MC");
  ASSERT_TRUE(img.ok()) << img.error().ToString();
  vm::Machine machine;
  machine.LoadImage(*img);
  ASSERT_EQ(machine.Run(10'000'000).reason, vm::StopReason::kHalted);
  EXPECT_EQ(machine.OutputString(), "x=42 hex=ff s=hi\n");
}

}  // namespace
}  // namespace sc
