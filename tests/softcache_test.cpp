// Software I-cache tests: equivalence with native execution, hit-rate
// guarantees, rewriting/patching behaviour, eviction and invalidation.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "minicc/compiler.h"
#include "softcache/system.h"
#include "tests/testing.h"

namespace sc {
namespace {

using softcache::EvictPolicy;
using softcache::SoftCacheConfig;
using softcache::SoftCacheSystem;
using softcache::Style;

image::Image Compile(std::string_view source) {
  auto img = minicc::CompileMiniC(source);
  SC_CHECK(img.ok()) << img.error().ToString();
  return std::move(*img);
}

// Runs `source` natively and under the given softcache config; requires
// identical exit codes and output, and intact CC invariants afterwards.
void ExpectEquivalent(std::string_view source, const SoftCacheConfig& config,
                      const std::string& input = "",
                      uint64_t max_instr = 100'000'000) {
  const image::Image img = Compile(source);

  std::string native_out;
  const vm::RunResult native = softcache::RunNative(img, input, &native_out, max_instr);
  ASSERT_EQ(native.reason, vm::StopReason::kHalted)
      << "native run failed: " << native.fault_message;

  SoftCacheSystem system(img, config);
  system.SetInput(input);
  const vm::RunResult cached = system.Run(max_instr);
  EXPECT_EQ(cached.reason, vm::StopReason::kHalted)
      << "softcache fault: " << cached.fault_message;
  EXPECT_EQ(cached.exit_code, native.exit_code);
  EXPECT_EQ(system.OutputString(), native_out);
  // The cached run retires at least as many instructions (extra jumps).
  EXPECT_GE(cached.instructions, native.instructions);
  system.cc().CheckInvariants();
}

SoftCacheConfig SparcConfig(uint32_t tcache_bytes,
                            EvictPolicy evict = EvictPolicy::kFifoRing) {
  SoftCacheConfig config;
  config.style = Style::kSparc;
  config.tcache_bytes = tcache_bytes;
  config.evict = evict;
  return config;
}

SoftCacheConfig ArmConfig(uint32_t tcache_bytes,
                          EvictPolicy evict = EvictPolicy::kFifoRing) {
  SoftCacheConfig config;
  config.style = Style::kArm;
  config.tcache_bytes = tcache_bytes;
  config.evict = evict;
  return config;
}

// --- Programs used across tests ---

constexpr const char* kFibProgram = R"(
  int fib(int n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }
  int main() { return fib(15); }
)";

constexpr const char* kLoopProgram = R"(
  int main() {
    int sum = 0;
    for (int i = 0; i < 5000; i++) sum += i % 7;
    return sum % 251;
  }
)";

constexpr const char* kCallChainProgram = R"(
  int leaf(int x) { return x * 3 + 1; }
  int mid(int x) { return leaf(x) + leaf(x + 1); }
  int top(int x) { return mid(x) + mid(x + 2); }
  int main() {
    int sum = 0;
    for (int i = 0; i < 200; i++) sum += top(i) % 13;
    return sum % 251;
  }
)";

constexpr const char* kSwitchProgram = R"(
  int dispatch(int x) {
    switch (x & 7) {
      case 0: return 3;
      case 1: return 1;
      case 2: return 4;
      case 3: return 1;
      case 4: return 5;
      case 5: return 9;
      case 6: return 2;
      default: return 6;
    }
  }
  int main() {
    int sum = 0;
    for (int i = 0; i < 500; i++) sum += dispatch(i);
    return sum % 251;
  }
)";

constexpr const char* kFnPtrProgram = R"(
  int add(int a, int b) { return a + b; }
  int sub(int a, int b) { return a - b; }
  int mix(int a, int b) { return a * 2 - b; }
  int (*ops[3])(int, int) = { add, sub, mix };
  int main() {
    int sum = 0;
    for (int i = 0; i < 300; i++) sum += ops[i % 3](i, 7) & 15;
    return sum % 251;
  }
)";

constexpr const char* kIoProgram = R"(
  int main() {
    int c;
    int count = 0;
    while ((c = getchar()) != -1) {
      if (c >= 'a' && c <= 'z') c = c - 'a' + 'A';
      putchar(c);
      count++;
    }
    print_nl();
    print_int(count);
    return 0;
  }
)";

// ---------------------------------------------------------------------------
// Equivalence: SPARC style
// ---------------------------------------------------------------------------

TEST(SoftCacheSparc, TrivialProgram) {
  ExpectEquivalent("int main() { return 42; }", SparcConfig(8192));
}

TEST(SoftCacheSparc, LoopLargeCache) {
  ExpectEquivalent(kLoopProgram, SparcConfig(32 * 1024));
}

TEST(SoftCacheSparc, RecursionLargeCache) {
  ExpectEquivalent(kFibProgram, SparcConfig(32 * 1024));
}

TEST(SoftCacheSparc, CallChain) {
  ExpectEquivalent(kCallChainProgram, SparcConfig(32 * 1024));
}

TEST(SoftCacheSparc, SwitchJumpTable) {
  ExpectEquivalent(kSwitchProgram, SparcConfig(32 * 1024));
}

TEST(SoftCacheSparc, FunctionPointers) {
  ExpectEquivalent(kFnPtrProgram, SparcConfig(32 * 1024));
}

TEST(SoftCacheSparc, InputOutput) {
  ExpectEquivalent(kIoProgram, SparcConfig(32 * 1024), "hello World 123!");
}

// Tiny caches force eviction storms; results must still be identical.
TEST(SoftCacheSparc, TinyCacheFifo) {
  ExpectEquivalent(kFibProgram, SparcConfig(1024, EvictPolicy::kFifoRing));
  ExpectEquivalent(kCallChainProgram, SparcConfig(1024, EvictPolicy::kFifoRing));
  ExpectEquivalent(kSwitchProgram, SparcConfig(1024, EvictPolicy::kFifoRing));
  ExpectEquivalent(kFnPtrProgram, SparcConfig(1024, EvictPolicy::kFifoRing));
}

TEST(SoftCacheSparc, TinyCacheFlushAll) {
  ExpectEquivalent(kFibProgram, SparcConfig(1024, EvictPolicy::kFlushAll));
  ExpectEquivalent(kCallChainProgram, SparcConfig(1024, EvictPolicy::kFlushAll));
  ExpectEquivalent(kSwitchProgram, SparcConfig(1024, EvictPolicy::kFlushAll));
  ExpectEquivalent(kFnPtrProgram, SparcConfig(1024, EvictPolicy::kFlushAll));
}

TEST(SoftCacheSparc, MediumCacheSweep) {
  for (uint32_t size : {2048u, 4096u, 8192u, 16384u}) {
    ExpectEquivalent(kCallChainProgram, SparcConfig(size));
  }
}

// ---------------------------------------------------------------------------
// Equivalence: ARM style (procedure chunks; no computed jumps)
// ---------------------------------------------------------------------------

TEST(SoftCacheArm, TrivialProgram) {
  ExpectEquivalent("int main() { return 42; }", ArmConfig(32 * 1024));
}

TEST(SoftCacheArm, Loop) { ExpectEquivalent(kLoopProgram, ArmConfig(32 * 1024)); }

TEST(SoftCacheArm, Recursion) {
  ExpectEquivalent(kFibProgram, ArmConfig(32 * 1024));
}

TEST(SoftCacheArm, CallChain) {
  ExpectEquivalent(kCallChainProgram, ArmConfig(32 * 1024));
}

TEST(SoftCacheArm, InputOutput) {
  ExpectEquivalent(kIoProgram, ArmConfig(32 * 1024), "abcXYZ");
}

TEST(SoftCacheArm, SmallCacheEvictions) {
  // Must be big enough for the largest single procedure, small enough to
  // evict across calls.
  ExpectEquivalent(kCallChainProgram, ArmConfig(3 * 1024));
}

TEST(SoftCacheArm, FlushAllPolicy) {
  ExpectEquivalent(kCallChainProgram, ArmConfig(3 * 1024, EvictPolicy::kFlushAll));
}

TEST(SoftCacheArm, BranchesOverCallExpansionsRemapCorrectly) {
  // ARM-style call sites expand 1 word -> 3 words, shifting every later
  // instruction; internal branches that jump *over* call sites must be
  // remapped through the index map. Dense branching around calls is the
  // stress case.
  ExpectEquivalent(R"(
    int f(int a) { return a * 3 + 1; }
    int g(int a) { return a - 2; }
    int main() {
      int acc = 0;
      for (int i = 0; i < 300; i++) {
        if (i & 1) acc += f(i);
        else if (i & 2) acc -= g(i);
        else if (i & 4) acc ^= f(g(i));
        else acc += i;
        while (acc > 10000) acc -= f(acc & 1023);
      }
      return acc % 251;
    }
  )", ArmConfig(32 * 1024));
}

TEST(SoftCacheArm, SelfRecursionLinksDirectly) {
  // Self-recursive calls link to the procedure's own entry at install time
  // (no stub round trip); deep recursion must still be exact.
  ExpectEquivalent(R"(
    int fact(int n) { return n <= 1 ? 1 : (fact(n - 1) * n) % 10007; }
    int main() { return fact(500) % 251; }
  )", ArmConfig(8 * 1024));
}

TEST(SoftCacheArm, IndirectJumpFaults) {
  // The ARM prototype does not support indirect jumps: translation of a
  // procedure containing a computed call must fault, not misexecute.
  const image::Image img = Compile(kFnPtrProgram);
  SoftCacheSystem system(img, ArmConfig(32 * 1024));
  const vm::RunResult result = system.Run(10'000'000);
  EXPECT_EQ(result.reason, vm::StopReason::kFault);
  EXPECT_NE(result.fault_message.find("indirect jump"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Hit-rate guarantee and rewriting behaviour
// ---------------------------------------------------------------------------

// The paper's guarantee: a working set that fits the (fully associative)
// tcache takes no misses after warm-up — each basic block is translated
// exactly once, so the miss count equals the resident block count and never
// grows afterwards.
TEST(SoftCacheGuarantee, ZeroMissesInSteadyState) {
  const image::Image img = Compile(kLoopProgram);
  SoftCacheSystem system(img, SparcConfig(64 * 1024));
  const vm::RunResult result = system.Run(100'000'000);
  ASSERT_EQ(result.reason, vm::StopReason::kHalted);
  const auto& stats = system.stats();
  // No evictions (everything fits) and every block translated exactly once.
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.flushes, 0u);
  EXPECT_EQ(stats.blocks_translated, system.cc().ResidentBlocks());
  // 5000-iteration loop: misses are a vanishing fraction of instructions.
  EXPECT_LT(system.MissRate(), 0.01);
}

TEST(SoftCacheGuarantee, WarmLoopTakesNoTraps) {
  // Run the loop once to warm the cache, snapshot trap counts, run more
  // iterations: the hot loop must execute with zero additional traps — the
  // claim that hits execute no tag checks at all.
  const image::Image img = Compile(R"(
    int work(int n) {
      int sum = 0;
      for (int i = 0; i < n; i++) sum += (i * 3) % 11;
      return sum;
    }
    int main() {
      work(100);              /* warm up */
      return work(20000) % 251; /* steady state */
    }
  )");
  SoftCacheSystem system(img, SparcConfig(64 * 1024));
  const vm::RunResult result = system.Run(100'000'000);
  ASSERT_EQ(result.reason, vm::StopReason::kHalted);
  const auto& stats = system.stats();
  // The steady-state loop body is ~20 instructions * 20000 iterations; traps
  // happen only during warm-up, so the total trap count stays tiny.
  EXPECT_LT(stats.tcmiss_traps, 200u);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(SoftCacheRewrite, BranchesArePatchedOnce) {
  const image::Image img = Compile(kLoopProgram);
  SoftCacheSystem system(img, SparcConfig(64 * 1024));
  const vm::RunResult result = system.Run(100'000'000);
  ASSERT_EQ(result.reason, vm::StopReason::kHalted);
  const auto& stats = system.stats();
  // Every patch corresponds to a resolved exit; with no evictions the
  // number of patches is bounded by ~2 per translated block.
  EXPECT_LE(stats.patches_applied, 2 * stats.blocks_translated);
  EXPECT_GT(stats.patches_applied, 0u);
}

TEST(SoftCacheRewrite, ComputedJumpsUseHashLookups) {
  const image::Image img = Compile(kSwitchProgram);
  SoftCacheSystem system(img, SparcConfig(64 * 1024));
  const vm::RunResult result = system.Run(100'000'000);
  ASSERT_EQ(result.reason, vm::StopReason::kHalted);
  // 500 dispatches; 7 of 8 residue classes go through the jump table (the
  // eighth falls to default at the bounds check) -> ~438 hash lookups.
  EXPECT_GE(system.stats().hash_lookups, 400u);
  // But only a handful of them translate (8 case targets).
  EXPECT_LE(system.stats().hash_lookup_misses, 16u);
}

TEST(SoftCacheRewrite, ClientExecutesOnlyLocalMemory) {
  // restrict_exec is on by default: the run completing proves the client
  // never fetched an instruction outside [local_base, local_limit).
  const image::Image img = Compile(kCallChainProgram);
  SoftCacheConfig config = SparcConfig(32 * 1024);
  ASSERT_TRUE(config.restrict_exec);
  SoftCacheSystem system(img, config);
  const vm::RunResult result = system.Run(100'000'000);
  EXPECT_EQ(result.reason, vm::StopReason::kHalted)
      << result.fault_message;
}

TEST(SoftCacheRewrite, TransferAccounting) {
  const image::Image img = Compile(kFibProgram);
  SoftCacheSystem system(img, SparcConfig(32 * 1024));
  const vm::RunResult result = system.Run(100'000'000);
  ASSERT_EQ(result.reason, vm::StopReason::kHalted);
  const auto& net = system.channel().stats();
  const auto& stats = system.stats();
  // One request/reply pair per translated block.
  EXPECT_EQ(net.messages_to_server, stats.blocks_translated);
  EXPECT_EQ(net.messages_to_client, stats.blocks_translated);
  // Every fetch pays exactly the 60-byte protocol overhead plus payload.
  const uint64_t payload = net.total_bytes() -
      stats.blocks_translated * softcache::kPerChunkOverheadBytes;
  EXPECT_EQ(payload % 4, 0u);
  EXPECT_GT(payload, 0u);
}

// ---------------------------------------------------------------------------
// Eviction correctness
// ---------------------------------------------------------------------------

// Measures the peak tcache footprint of `img` under `base`, then returns a
// config whose tcache holds only `fraction` of it (rounded to words),
// guaranteeing capacity pressure on a re-run.
SoftCacheConfig Shrunk(const image::Image& img, SoftCacheConfig base,
                       double fraction) {
  SoftCacheConfig probe = base;
  probe.tcache_bytes = 64 * 1024;
  SoftCacheSystem system(img, probe);
  const vm::RunResult result = system.Run(200'000'000);
  SC_CHECK(result.reason == vm::StopReason::kHalted) << result.fault_message;
  const uint64_t peak = system.stats().tcache_bytes_used_peak;
  SC_CHECK_GT(peak, 0u);
  base.tcache_bytes =
      static_cast<uint32_t>(static_cast<double>(peak) * fraction) & ~3u;
  base.tcache_bytes = std::max(base.tcache_bytes, 256u);
  return base;
}

TEST(SoftCacheEvict, EvictionsHappenInTinyCache) {
  const image::Image img = Compile(kCallChainProgram);
  SoftCacheSystem system(img, Shrunk(img, SparcConfig(0), 0.5));
  const vm::RunResult result = system.Run(100'000'000);
  ASSERT_EQ(result.reason, vm::StopReason::kHalted) << result.fault_message;
  EXPECT_GT(system.stats().evictions, 0u);
  // Retranslation after eviction: more translations than resident blocks.
  EXPECT_GT(system.stats().blocks_translated, system.cc().ResidentBlocks());
}

TEST(SoftCacheEvict, StackWalkFixesReturnAddresses) {
  // Deep recursion + tiny cache: blocks holding pending return addresses
  // are evicted and the stack walker must repair every frame.
  const image::Image img = Compile(R"(
    int deep(int n, int acc) {
      if (n == 0) return acc;
      int x = (acc * 7 + n) % 1000;
      return deep(n - 1, x) + 1;
    }
    int main() { return deep(120, 3) % 200; }
  )");
  SoftCacheSystem system(img, Shrunk(img, SparcConfig(0), 0.4));
  const vm::RunResult result = system.Run(100'000'000);
  ASSERT_EQ(result.reason, vm::StopReason::kHalted) << result.fault_message;

  std::string native_out;
  const vm::RunResult native = softcache::RunNative(img, "", &native_out);
  EXPECT_EQ(result.exit_code, native.exit_code);
  EXPECT_GT(system.stats().return_addr_fixups, 0u);
  system.cc().CheckInvariants();
}

TEST(SoftCacheEvict, FlushAllSurvivesDeepRecursion) {
  const image::Image img = Compile(R"(
    int deep(int n) { return n == 0 ? 1 : deep(n - 1) + n % 3; }
    int main() { return deep(150) % 200; }
  )");
  SoftCacheSystem system(img, Shrunk(img, SparcConfig(0, EvictPolicy::kFlushAll), 0.4));
  const vm::RunResult result = system.Run(100'000'000);
  ASSERT_EQ(result.reason, vm::StopReason::kHalted) << result.fault_message;
  EXPECT_GT(system.stats().flushes, 0u);
  const vm::RunResult native = softcache::RunNative(img, "", nullptr);
  EXPECT_EQ(result.exit_code, native.exit_code);
}

TEST(SoftCacheEvict, ArmRedirectorsSurviveEviction) {
  // ARM style: evict procedures while calls are pending; redirector cells
  // must route returns back through re-translated procedures.
  const image::Image img = Compile(R"(
    int a(int x);
    int b(int x) { return x <= 0 ? 1 : a(x - 1) * 2 % 97; }
    int a(int x) { return x <= 0 ? 2 : b(x - 1) + 3; }
    int main() { return a(60) % 200; }
  )");
  SoftCacheSystem system(img, Shrunk(img, ArmConfig(0), 0.8));
  const vm::RunResult result = system.Run(100'000'000);
  ASSERT_EQ(result.reason, vm::StopReason::kHalted) << result.fault_message;
  EXPECT_GT(system.stats().evictions, 0u);
  EXPECT_GT(system.stats().redirector_words, 0u);
  const vm::RunResult native = softcache::RunNative(img, "", nullptr);
  EXPECT_EQ(result.exit_code, native.exit_code);
  system.cc().CheckInvariants();
}

TEST(SoftCacheEvict, BlockLargerThanCacheFaults) {
  // ARM-style chunks are whole procedures; main() cannot fit in 64 bytes.
  const image::Image img = Compile(kLoopProgram);
  SoftCacheSystem system(img, ArmConfig(64));
  const vm::RunResult result = system.Run(1'000'000);
  EXPECT_EQ(result.reason, vm::StopReason::kFault);
  EXPECT_NE(result.fault_message.find("exceeds tcache"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Trace chunking (superblocks with mid-chunk side exits)
// ---------------------------------------------------------------------------

SoftCacheConfig TraceConfig(uint32_t tcache_bytes, uint32_t trace_blocks,
                            EvictPolicy evict = EvictPolicy::kFifoRing) {
  SoftCacheConfig config = SparcConfig(tcache_bytes, evict);
  config.max_trace_blocks = trace_blocks;
  return config;
}

TEST(SoftCacheTrace, EquivalentAtEveryTraceLength) {
  for (const uint32_t blocks : {2u, 4u, 8u}) {
    ExpectEquivalent(kLoopProgram, TraceConfig(32 * 1024, blocks));
    ExpectEquivalent(kCallChainProgram, TraceConfig(32 * 1024, blocks));
    ExpectEquivalent(kSwitchProgram, TraceConfig(32 * 1024, blocks));
    ExpectEquivalent(kFibProgram, TraceConfig(32 * 1024, blocks));
  }
}

TEST(SoftCacheTrace, EquivalentUnderEvictionPressure) {
  ExpectEquivalent(kCallChainProgram, TraceConfig(1024, 4));
  ExpectEquivalent(kFibProgram, TraceConfig(1024, 4, EvictPolicy::kFlushAll));
}

TEST(SoftCacheTrace, FewerChunksThanBasicBlocks) {
  const image::Image img = Compile(kCallChainProgram);
  SoftCacheSystem bb_system(img, TraceConfig(64 * 1024, 1));
  ASSERT_EQ(bb_system.Run(100'000'000).reason, vm::StopReason::kHalted);
  SoftCacheSystem trace_system(img, TraceConfig(64 * 1024, 6));
  ASSERT_EQ(trace_system.Run(100'000'000).reason, vm::StopReason::kHalted);
  // Traces merge fallthrough chains: strictly fewer chunk fetches.
  EXPECT_LT(trace_system.stats().blocks_translated,
            bb_system.stats().blocks_translated);
  trace_system.cc().CheckInvariants();
}

TEST(SoftCacheTrace, SideExitsArePatchedLikeTerminators) {
  const image::Image img = Compile(kLoopProgram);
  SoftCacheSystem system(img, TraceConfig(64 * 1024, 8));
  const vm::RunResult result = system.Run(100'000'000);
  ASSERT_EQ(result.reason, vm::StopReason::kHalted);
  // Steady state: trap count bounded by (small constant per block), i.e.
  // the 5000-iteration loop is NOT trapping per iteration on side exits.
  EXPECT_LT(system.stats().tcmiss_traps, 100u);
  system.cc().CheckInvariants();
}

// ---------------------------------------------------------------------------
// Explicit invalidation (self-modifying code contract)
// ---------------------------------------------------------------------------

TEST(SoftCacheInval, IcacheInvalEvictsBlocks) {
  const image::Image img = Compile(kLoopProgram);
  SoftCacheSystem system(img, SparcConfig(64 * 1024));
  ASSERT_EQ(system.Run(100'000'000).reason, vm::StopReason::kHalted);
  const size_t resident = system.cc().ResidentBlocks();
  ASSERT_GT(resident, 0u);
  // Invalidate the whole text range; every block must go, except that the
  // handler re-translates the block containing the (halted) current PC so
  // execution could resume in fresh code.
  (void)system.cc().OnIcacheInvalidate(system.machine(), img.text_base,
                                       static_cast<uint32_t>(img.text.size()),
                                       system.machine().pc());
  EXPECT_LE(system.cc().ResidentBlocks(), 1u);
  system.cc().CheckInvariants();
}

// ---------------------------------------------------------------------------
// Pinning (the paper's "flexible data pinning" capability)
// ---------------------------------------------------------------------------

TEST(SoftCachePin, PinnedBlockSurvivesEvictionStorm) {
  const image::Image img = Compile(kCallChainProgram);
  const image::Symbol* leaf = img.FindSymbol("leaf");
  ASSERT_NE(leaf, nullptr);
  SoftCacheSystem system(img, Shrunk(img, SparcConfig(0), 0.5));
  ASSERT_TRUE(system.cc().Pin(leaf->addr));
  const vm::RunResult result = system.Run(100'000'000);
  ASSERT_EQ(result.reason, vm::StopReason::kHalted) << result.fault_message;
  EXPECT_GT(system.stats().evictions, 0u);
  // The pinned entry block stayed resident through every eviction.
  EXPECT_TRUE(system.cc().IsResident(leaf->addr));
  EXPECT_GT(system.cc().pinned_bytes(), 0u);
  const vm::RunResult native = softcache::RunNative(img, "", nullptr);
  EXPECT_EQ(result.exit_code, native.exit_code);
  system.cc().CheckInvariants();
}

TEST(SoftCachePin, PinnedBlockSurvivesFlushAll) {
  const image::Image img = Compile(kCallChainProgram);
  const image::Symbol* leaf = img.FindSymbol("leaf");
  ASSERT_NE(leaf, nullptr);
  SoftCacheSystem system(img, Shrunk(img, SparcConfig(0, EvictPolicy::kFlushAll), 0.5));
  ASSERT_TRUE(system.cc().Pin(leaf->addr));
  const vm::RunResult result = system.Run(100'000'000);
  ASSERT_EQ(result.reason, vm::StopReason::kHalted) << result.fault_message;
  EXPECT_GT(system.stats().flushes, 0u);
  EXPECT_TRUE(system.cc().IsResident(leaf->addr));
  const vm::RunResult native = softcache::RunNative(img, "", nullptr);
  EXPECT_EQ(result.exit_code, native.exit_code);
  system.cc().CheckInvariants();
}

TEST(SoftCachePin, UnpinMakesBlockEvictableAgain) {
  const image::Image img = Compile(kLoopProgram);
  SoftCacheSystem system(img, SparcConfig(8192));
  ASSERT_TRUE(system.cc().Pin(img.entry));
  EXPECT_GT(system.cc().pinned_bytes(), 0u);
  system.cc().Unpin(img.entry);
  EXPECT_EQ(system.cc().pinned_bytes(), 0u);
  // Invalidation may now evict it like any block.
  (void)system.cc().OnIcacheInvalidate(system.machine(), img.text_base,
                                       static_cast<uint32_t>(img.text.size()),
                                       system.machine().pc());
  system.cc().CheckInvariants();
}

TEST(SoftCachePin, UnpinResolvesArmInteriorAddresses) {
  // Pin and Unpin must agree on address resolution: under ARM style both
  // accept any address inside a resident procedure, so Pin(p); Unpin(p + 4)
  // really unpins the block (Unpin used to require the exact block start
  // and silently no-op on interior addresses).
  const image::Image img = Compile(kCallChainProgram);
  const image::Symbol* leaf = img.FindSymbol("leaf");
  ASSERT_NE(leaf, nullptr);
  SoftCacheSystem system(img, ArmConfig(32 * 1024));
  ASSERT_TRUE(system.cc().Pin(leaf->addr));
  EXPECT_GT(system.cc().pinned_bytes(), 0u);
  system.cc().Unpin(leaf->addr + 4);  // interior of leaf
  EXPECT_EQ(system.cc().pinned_bytes(), 0u);
  system.cc().CheckInvariants();
}

TEST(SoftCachePin, OverPinningFaultsCleanly) {
  // Pin more code than the tcache holds: allocation must fail with a clear
  // fault, not corrupt pinned blocks.
  const image::Image img = Compile(kCallChainProgram);
  softcache::SoftCacheConfig config = SparcConfig(512);
  SoftCacheSystem system(img, config);
  auto& cc = system.cc();
  // Pin entry blocks of every function until pinning itself fails.
  bool fault = false;
  for (const image::Symbol* fn : img.Functions()) {
    if (!cc.Pin(fn->addr)) {
      fault = true;
      break;
    }
    if (cc.pinned_bytes() > 400) break;
  }
  const vm::RunResult result = system.Run(100'000'000);
  if (result.reason == vm::StopReason::kFault) {
    EXPECT_NE(result.fault_message.find("pinned"), std::string::npos)
        << result.fault_message;
  } else {
    EXPECT_EQ(result.reason, vm::StopReason::kHalted);
  }
  (void)fault;
}

// ---------------------------------------------------------------------------
// Failed-install rollback
// ---------------------------------------------------------------------------

TEST(SoftCacheRewrite, InstallArmRollsBackOnForwardCellExhaustion) {
  // `mid` contains two call sites. With room for exactly one forward cell,
  // emission of the second call site fails halfway through pass 2, after
  // the block is registered and the first cell is bound to it. The
  // half-built block must be unwound completely, not left registered.
  const image::Image img = Compile(kCallChainProgram);
  const image::Symbol* mid = img.FindSymbol("mid");
  ASSERT_NE(mid, nullptr);
  SoftCacheConfig config = ArmConfig(32 * 1024);
  config.forward_cell_bytes = 4;
  SoftCacheSystem system(img, config);
  auto& cc = system.cc();
  EXPECT_FALSE(cc.Pin(mid->addr));
  EXPECT_FALSE(cc.IsResident(mid->addr));
  EXPECT_EQ(cc.ResidentBlocks(), 0u);
  EXPECT_EQ(cc.pinned_bytes(), 0u);
  // The unwind is not an eviction and must not count as one.
  EXPECT_EQ(system.stats().evictions, 0u);
  EXPECT_EQ(system.stats().extra_words_live, 0u);
  cc.CheckInvariants();
}

// ---------------------------------------------------------------------------
// Guest-driven self-modifying code (dynamic-linking idiom)
// ---------------------------------------------------------------------------

// The program patches the immediate of an instruction inside answer() (the
// jump-table-rewrite idiom the paper cites for dynamic linking), calls
// __icache_inval per the decreed contract, and observes the new behaviour.
// Under the softcache, the CC pushes the rewritten text to the MC and drops
// the stale blocks; natively the patch takes effect directly. Both must
// agree.
constexpr const char* kSelfModifyingProgram = R"(
  int answer() { return 1011; }
  int main() {
    int before = answer();
    /* find the instruction carrying the constant 1011 and rewrite it */
    int *code = (int*)answer;
    int patched = 0;
    for (int i = 0; i < 32; i++) {
      if ((code[i] & 0xffff) == 1011) {
        code[i] = (int)((uint)code[i] & 0xffff0000) | 2022;
        patched = 1;
        break;
      }
    }
    if (!patched) return 1;
    __icache_inval((int)code, 128);
    int after = answer();
    if (before != 1011) return 2;
    if (after != 2022) return 3;
    print_str("smc ok\n");
    return 0;
  }
)";

TEST(SoftCacheSelfModify, GuestPatchTakesEffect) {
  ExpectEquivalent(kSelfModifyingProgram, SparcConfig(32 * 1024));
  ExpectEquivalent(kSelfModifyingProgram, ArmConfig(32 * 1024));
}

TEST(SoftCacheSelfModify, WorksUnderEvictionPressure) {
  ExpectEquivalent(kSelfModifyingProgram, SparcConfig(1024));
  ExpectEquivalent(kSelfModifyingProgram, TraceConfig(2048, 4));
}

TEST(SoftCacheSelfModify, TextWriteReachesTheServer) {
  const image::Image img = Compile(kSelfModifyingProgram);
  SoftCacheSystem system(img, SparcConfig(32 * 1024));
  const vm::RunResult result = system.Run(10'000'000);
  ASSERT_EQ(result.reason, vm::StopReason::kHalted) << result.fault_message;
  EXPECT_EQ(result.exit_code, 0);
  // The MC's text copy now differs from the original image at the patch.
  const image::Symbol* fn = img.FindSymbol("answer");
  ASSERT_NE(fn, nullptr);
  bool diff = false;
  for (uint32_t a = fn->addr; a < fn->addr + fn->size; a += 4) {
    if (system.mc().image().TextWord(a) != img.TextWord(a)) diff = true;
  }
  EXPECT_TRUE(diff);
  system.cc().CheckInvariants();
}

// ---------------------------------------------------------------------------
// Fleet: multiple clients sharing one memory controller (paper Figure 1)
// ---------------------------------------------------------------------------

TEST(SoftCacheDump, StateDumpIsComprehensive) {
  const image::Image img = Compile(kCallChainProgram);
  SoftCacheSystem system(img, SparcConfig(32 * 1024));
  ASSERT_EQ(system.Run(100'000'000).reason, vm::StopReason::kHalted);
  const std::string dump = system.cc().DumpState();
  EXPECT_NE(dump.find("=== tcache state ==="), std::string::npos);
  EXPECT_NE(dump.find("block#"), std::string::npos);
  EXPECT_NE(dump.find("LINKED"), std::string::npos);
  EXPECT_NE(dump.find("stubs:"), std::string::npos);
  // One line per resident block.
  size_t block_lines = 0;
  for (size_t pos = dump.find("block#"); pos != std::string::npos;
       pos = dump.find("block#", pos + 1)) {
    ++block_lines;
  }
  EXPECT_EQ(block_lines, system.cc().ResidentBlocks());
}

TEST(SoftCacheFleet, ClientsSharingOneServerStayIndependent) {
  const image::Image img = Compile(kIoProgram);
  softcache::SoftCacheConfig config = SparcConfig(2048);
  softcache::MemoryController shared_mc(img, config.style,
                                        config.max_block_instrs,
                                        config.max_trace_blocks);
  struct Client {
    std::unique_ptr<vm::Machine> machine;
    std::unique_ptr<net::Channel> channel;
    std::unique_ptr<softcache::CacheController> cc;
  };
  const std::string inputs[] = {"alpha one", "BETA two!", "gamma 333"};
  std::vector<Client> clients;
  for (const std::string& input : inputs) {
    Client client;
    client.machine = std::make_unique<vm::Machine>();
    client.machine->LoadImage(img);
    client.machine->SetInput(std::vector<uint8_t>(input.begin(), input.end()));
    client.channel = std::make_unique<net::Channel>();
    client.cc = std::make_unique<softcache::CacheController>(
        *client.machine, shared_mc, *client.channel, config);
    client.cc->Attach();
    clients.push_back(std::move(client));
  }
  // Interleave in small slices to stress server sharing mid-translation.
  bool all_done = false;
  int guard = 0;
  while (!all_done && ++guard < 100000) {
    all_done = true;
    for (Client& client : clients) {
      const vm::RunResult r = client.machine->Run(500);
      if (r.reason == vm::StopReason::kInstrLimit) all_done = false;
      ASSERT_NE(r.reason, vm::StopReason::kFault) << r.fault_message;
    }
  }
  ASSERT_TRUE(all_done);
  for (size_t i = 0; i < clients.size(); ++i) {
    std::string native_out;
    const vm::RunResult native =
        softcache::RunNative(img, inputs[i], &native_out);
    ASSERT_EQ(native.reason, vm::StopReason::kHalted);
    EXPECT_EQ(clients[i].machine->OutputString(), native_out) << i;
    clients[i].cc->CheckInvariants();
  }
  // The shared server saw every client's requests.
  EXPECT_GE(shared_mc.requests_served(),
            3 * clients[0].cc->stats().blocks_translated);
}

// ---------------------------------------------------------------------------
// Chunker unit tests
// ---------------------------------------------------------------------------

TEST(Chunker, BasicBlockEndsAtBranch) {
  const image::Image img = Compile(kLoopProgram);
  auto chunk = softcache::ChunkBasicBlock(img, img.entry, 64);
  ASSERT_TRUE(chunk.ok()) << chunk.error().ToString();
  EXPECT_EQ(chunk->orig_addr, img.entry);
  EXPECT_GT(chunk->words.size(), 0u);
  EXPECT_NE(chunk->exit, softcache::ExitKind::kNone);
}

TEST(Chunker, ProcedureChunkCoversWholeFunction) {
  const image::Image img = Compile(kFibProgram);
  const image::Symbol* fib = img.FindSymbol("fib");
  ASSERT_NE(fib, nullptr);
  // Request an interior address; the chunk must still cover the whole
  // procedure with the right entry offset.
  auto chunk = softcache::ChunkProcedure(img, fib->addr + 8);
  ASSERT_TRUE(chunk.ok()) << chunk.error().ToString();
  EXPECT_EQ(chunk->orig_addr, fib->addr);
  EXPECT_EQ(chunk->words.size(), fib->size / 4);
  EXPECT_EQ(chunk->entry_word, 2u);
}

TEST(Chunker, TraceModeSpansBranches) {
  const image::Image img = Compile(kLoopProgram);
  // Find a block that ends at a conditional branch under plain chunking.
  auto plain = softcache::ChunkBasicBlock(img, img.entry, 64, 1);
  ASSERT_TRUE(plain.ok());
  auto traced = softcache::ChunkBasicBlock(img, img.entry, 64, 8);
  ASSERT_TRUE(traced.ok());
  // The trace is at least as long and contains the plain block as a prefix.
  ASSERT_GE(traced->words.size(), plain->words.size());
  for (size_t i = 0; i + 1 < plain->words.size(); ++i) {
    EXPECT_EQ(traced->words[i], plain->words[i]) << i;
  }
  // Mid-chunk conditional branches exist iff the trace actually grew.
  if (traced->words.size() > plain->words.size()) {
    int mid_branches = 0;
    for (size_t i = 0; i + 1 < traced->words.size(); ++i) {
      if (isa::IsConditionalBranch(isa::Decode(traced->words[i]).op)) {
        ++mid_branches;
      }
    }
    EXPECT_GT(mid_branches, 0);
  }
}

TEST(Chunker, TraceModeRespectsInstructionCap) {
  const image::Image img = Compile(kLoopProgram);
  auto traced = softcache::ChunkBasicBlock(img, img.entry, 6, 100);
  ASSERT_TRUE(traced.ok());
  EXPECT_LE(traced->words.size(), 6u);
}

TEST(Chunker, FetchObserverCountsMatchInstructions) {
  // Sanity for every probe-based figure: a fetch observer sees exactly one
  // event per retired instruction.
  const image::Image img = Compile(kLoopProgram);
  struct Counter : vm::FetchObserver {
    uint64_t count = 0;
    void OnFetch(uint32_t) override { ++count; }
  };
  vm::Machine machine;
  machine.LoadImage(img);
  Counter counter;
  machine.set_fetch_observer(&counter);
  const vm::RunResult result = machine.Run(10'000'000);
  ASSERT_EQ(result.reason, vm::StopReason::kHalted);
  EXPECT_EQ(counter.count, result.instructions);
}

TEST(Chunker, RejectsNonTextAddress) {
  const image::Image img = Compile(kFibProgram);
  EXPECT_FALSE(softcache::ChunkBasicBlock(img, 0x10, 64).ok());
  EXPECT_FALSE(softcache::ChunkProcedure(img, 0x10).ok());
}

// ---------------------------------------------------------------------------
// Protocol unit tests
// ---------------------------------------------------------------------------

TEST(Protocol, RequestRoundTrip) {
  softcache::Request request;
  request.type = softcache::MsgType::kChunkRequest;
  request.seq = 7;
  request.addr = 0x12345;
  request.length = 64;
  const auto bytes = request.Serialize();
  EXPECT_EQ(bytes.size(), softcache::kRequestBytes);
  auto parsed = softcache::Request::Parse(bytes);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->seq, 7u);
  EXPECT_EQ(parsed->addr, 0x12345u);
  EXPECT_EQ(parsed->length, 64u);
}

TEST(Protocol, ReplyRoundTrip) {
  softcache::Reply reply;
  reply.type = softcache::MsgType::kChunkReply;
  reply.seq = 9;
  reply.addr = 0x10000;
  reply.aux = 0xabcd;
  reply.extra = 0xfeed;
  reply.payload = {1, 2, 3, 4, 5, 6, 7, 8};
  const auto bytes = reply.Serialize();
  EXPECT_EQ(bytes.size(), softcache::kReplyHeaderBytes + 8 +
                              softcache::kReplyTrailerBytes);
  auto parsed = softcache::Reply::Parse(bytes);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->aux, 0xabcdu);
  EXPECT_EQ(parsed->extra, 0xfeedu);
  EXPECT_EQ(parsed->payload.size(), 8u);
}

TEST(Protocol, CorruptionDetected) {
  softcache::Request request;
  request.addr = 0x8000;
  auto bytes = request.Serialize();
  bytes[13] ^= 0xff;
  EXPECT_FALSE(softcache::Request::Parse(bytes).ok());

  softcache::Reply reply;
  reply.payload = {9, 9, 9, 9};
  auto reply_bytes = reply.Serialize();
  reply_bytes[reply_bytes.size() - 6] ^= 1;  // flip a payload byte
  EXPECT_FALSE(softcache::Reply::Parse(reply_bytes).ok());
}

TEST(Protocol, RequestChecksumCoversPayload) {
  softcache::Request request;
  request.type = softcache::MsgType::kDataWriteback;
  request.seq = 3;
  request.addr = 0x30000;
  request.length = 4;
  request.payload = {1, 2, 3, 4};
  auto bytes = request.Serialize();
  auto parsed = softcache::Request::Parse(bytes);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->payload, request.payload);
  bytes[softcache::kRequestBytes + 2] ^= 0x01;  // flip a payload bit
  EXPECT_FALSE(softcache::Request::Parse(bytes).ok());
}

TEST(Protocol, DeclaredLengthMustMatchPayload) {
  softcache::Request request;
  request.type = softcache::MsgType::kTextWrite;
  request.seq = 4;
  request.addr = 0x10000;
  request.payload = {5, 6, 7, 8};
  request.length = 8;  // lies: the payload is 4 bytes
  EXPECT_FALSE(softcache::Request::Parse(request.Serialize()).ok());
  request.length = 4;
  EXPECT_TRUE(softcache::Request::Parse(request.Serialize()).ok());
}

TEST(Protocol, NonWriteRequestsRejectStrayPayload) {
  softcache::Request request;
  request.type = softcache::MsgType::kChunkRequest;
  request.seq = 5;
  request.addr = 0x10000;
  request.length = 64;
  request.payload = {1};
  EXPECT_FALSE(softcache::Request::Parse(request.Serialize()).ok());
}

TEST(Protocol, CorruptedTextWriteRejectedByMc) {
  // End to end: a corrupted write frame reaching the MC is refused with a
  // kError reply (seq 0, reserved for unparseable requests) and the server
  // text stays untouched.
  const image::Image img = Compile(kFibProgram);
  softcache::MemoryController mc(img, Style::kSparc, 64);
  softcache::Request request;
  request.type = softcache::MsgType::kTextWrite;
  request.seq = 11;
  request.addr = img.text_base;
  request.length = 4;
  request.payload = {0xaa, 0xbb, 0xcc, 0xdd};
  auto frame = request.Serialize();
  frame[softcache::kRequestBytes + 1] ^= 0x10;  // corrupt the payload
  auto reply = softcache::Reply::Parse(mc.Handle(frame));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->type, softcache::MsgType::kError);
  EXPECT_EQ(reply->seq, 0u);
  EXPECT_EQ(mc.image().text, img.text);
}

TEST(Protocol, PerChunkOverheadIs60Bytes) {
  // The constant the paper reports for the ARM prototype.
  EXPECT_EQ(softcache::kPerChunkOverheadBytes, 60u);
}

}  // namespace
}  // namespace sc
