// Multi-client MC tests: one shared McServer core serving N per-client
// McSessions through the net::Switch demux.
//
// Covers the wire format (client id packing, golden id-0 frames identical to
// the seed protocol), the memoized translation cache (two sessions, ONE
// translate — counter-proven), per-session copy-on-write text/data isolation,
// per-session crash isolation, switch-level spoof rejection, and end-to-end
// bit identity: every client of a MultiClientSystem must behave exactly like
// its solo run, including under per-client fault/crash schedules.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "isa/isa.h"
#include "minicc/compiler.h"
#include "net/switch.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "softcache/mc.h"
#include "softcache/protocol.h"
#include "softcache/system.h"
#include "tests/testing.h"
#include "vm/machine.h"
#include "workloads/workloads.h"

namespace sc {
namespace {

using softcache::kClientIdMask;
using softcache::kClientIdShift;
using softcache::kEpochShift;
using softcache::MemoryController;
using softcache::MsgType;
using softcache::Reply;
using softcache::Request;

image::Image LoopImage() {
  auto img = minicc::CompileMiniC(R"(
    int a[256];
    int main() {
      int sum = 0;
      for (int i = 0; i < 256; i = i + 1) { a[i] = i * 3; }
      for (int i = 0; i < 256; i = i + 1) { sum = sum + a[i]; }
      return sum % 251;
    }
  )");
  SC_CHECK(img.ok());
  return std::move(*img);
}

Request ChunkReq(uint32_t addr, uint32_t client_id, uint32_t seq = 1) {
  Request req;
  req.type = MsgType::kChunkRequest;
  req.seq = seq;
  req.addr = addr;
  req.client_id = client_id;
  return req;
}

Reply MustParse(const std::vector<uint8_t>& bytes) {
  auto reply = Reply::Parse(bytes);
  SC_CHECK(reply.ok()) << reply.error().ToString();
  return std::move(*reply);
}

// ---------------------------------------------------------------------------
// Wire format: client id packing and seed-protocol golden frames
// ---------------------------------------------------------------------------

TEST(ClientIdWire, RoundTripsThroughTypeWord) {
  for (uint32_t id : {0u, 1u, 7u, 255u, 256u, 2048u, 4095u}) {
    Request req = ChunkReq(0x1000, id, 42);
    req.epoch = 3;
    const auto bytes = req.Serialize();
    // The id rides bits 19..8 of the type word: all of byte 5 plus the low
    // nibble of byte 6 (the epoch owns the rest of byte 6 and byte 7).
    EXPECT_EQ(bytes[5], id & 0xff);
    EXPECT_EQ(bytes[6] & 0x0f, (id >> 8) & 0x0f);
    auto parsed = Request::Parse(bytes);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed->client_id, id);
    EXPECT_EQ(parsed->epoch, 3u);
    EXPECT_EQ(parsed->type, MsgType::kChunkRequest);

    Reply reply;
    reply.type = MsgType::kChunkReply;
    reply.seq = 42;
    reply.client_id = id;
    reply.epoch = 3;
    auto parsed_reply = Reply::Parse(reply.Serialize());
    ASSERT_TRUE(parsed_reply.ok());
    EXPECT_EQ(parsed_reply->client_id, id);
  }
  // The widened epoch field (bits 31..20) round-trips to its 12-bit edge
  // alongside a full-width id — the two fields may not bleed into each
  // other.
  Request req = ChunkReq(0x1000, 0xabc, 42);
  req.epoch = 0xfff;
  auto parsed = Request::Parse(req.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->client_id, 0xabcu);
  EXPECT_EQ(parsed->epoch, 0xfffu);
}

// Golden-frame test: a client-id-0, epoch-0 request must serialize to EXACTLY
// the seed protocol's bytes, re-encoded here by hand. Any header growth or
// field move breaks this loudly.
TEST(ClientIdWire, IdZeroFrameMatchesSeedBytesGolden) {
  Request req = ChunkReq(0x2040, /*client_id=*/0, /*seq=*/9);
  req.length = 0;
  const auto bytes = req.Serialize();
  ASSERT_EQ(bytes.size(), softcache::kRequestBytes);

  auto put = [](std::vector<uint8_t>& out, uint32_t v) {
    out.push_back(static_cast<uint8_t>(v));
    out.push_back(static_cast<uint8_t>(v >> 8));
    out.push_back(static_cast<uint8_t>(v >> 16));
    out.push_back(static_cast<uint8_t>(v >> 24));
  };
  // The seed layout: magic, bare type word, seq, addr, length, checksum.
  std::vector<uint8_t> golden;
  put(golden, softcache::kProtocolMagic);
  put(golden, static_cast<uint32_t>(MsgType::kChunkRequest));
  put(golden, 9);
  put(golden, 0x2040);
  put(golden, 0);
  put(golden, softcache::Checksum(golden.data(), golden.size()));
  EXPECT_EQ(bytes, golden);

  // A nonzero id diverges from the seed bytes in exactly one octet.
  Request req1 = req;
  req1.client_id = 1;
  const auto bytes1 = req1.Serialize();
  int diffs = 0;
  for (size_t i = 0; i < 20; ++i) {
    if (bytes[i] != bytes1[i]) ++diffs;
  }
  EXPECT_EQ(diffs, 1);
  EXPECT_EQ(bytes1[5], 1);
}

// ---------------------------------------------------------------------------
// Shared translation memo
// ---------------------------------------------------------------------------

TEST(SharedMemo, TwoSessionsExactlyOneTranslate) {
  const image::Image img = LoopImage();
  MemoryController mc(img, softcache::Style::kSparc, 64);
  const uint32_t entry = img.entry;

  const Reply r0 = MustParse(mc.Handle(ChunkReq(entry, 0).Serialize()));
  const Reply r1 = MustParse(mc.Handle(ChunkReq(entry, 1).Serialize()));

  // Counter-proven: the second session's fetch was served from the memo.
  EXPECT_EQ(mc.server().stats().translates, 1u);
  EXPECT_EQ(mc.server().stats().translate_memo_hits, 1u);
  EXPECT_EQ(mc.sessions_active(), 2u);

  // Identical artifact, per-session stamping.
  EXPECT_EQ(r0.payload, r1.payload);
  EXPECT_EQ(r0.aux, r1.aux);
  EXPECT_EQ(r0.extra, r1.extra);
  EXPECT_EQ(r0.client_id, 0u);
  EXPECT_EQ(r1.client_id, 1u);

  // A third fetch of the same chunk (even from a brand-new session) still
  // costs zero translation work.
  MustParse(mc.Handle(ChunkReq(entry, 2).Serialize()));
  EXPECT_EQ(mc.server().stats().translates, 1u);
  EXPECT_EQ(mc.server().stats().translate_memo_hits, 2u);
}

TEST(SharedMemo, TextWriteInvalidatesWithoutCorruptingOtherClients) {
  const image::Image img = LoopImage();
  MemoryController mc(img, softcache::Style::kSparc, 64);
  const uint32_t entry = img.entry;

  const Reply before0 = MustParse(mc.Handle(ChunkReq(entry, 0).Serialize()));
  MustParse(mc.Handle(ChunkReq(entry, 1).Serialize()));
  ASSERT_EQ(mc.server().stats().translates, 1u);

  // Client 1 patches the first word of the entry chunk (self-modifying
  // code): the entry jump becomes a NOP, so its chunk now falls through.
  isa::Instr nop;
  nop.op = isa::Opcode::kAddi;
  const uint32_t nop_word = isa::Encode(nop);
  Request write;
  write.type = MsgType::kTextWrite;
  write.seq = 2;
  write.addr = entry;
  write.client_id = 1;
  write.payload.resize(4);
  std::memcpy(write.payload.data(), &nop_word, 4);
  write.length = static_cast<uint32_t>(write.payload.size());
  const Reply ack = MustParse(mc.Handle(write.Serialize()));
  EXPECT_EQ(ack.type, MsgType::kTextWriteAck);

  // The write faulted client 1 to a private text image and dropped the
  // shared memo entry covering the written range.
  EXPECT_TRUE(mc.session(1).has_private_text());
  EXPECT_FALSE(mc.session(0).has_private_text());
  EXPECT_GE(mc.server().stats().memo_invalidations, 1u);

  // Client 0 re-fetches: re-translated from the PRISTINE image — the other
  // client's write must not leak in.
  const Reply after0 =
      MustParse(mc.Handle(ChunkReq(entry, 0, /*seq=*/3).Serialize()));
  EXPECT_EQ(after0.payload, before0.payload);
  EXPECT_EQ(after0.aux, before0.aux);

  // Client 1 re-fetches: sees its own patched text.
  const Reply after1 =
      MustParse(mc.Handle(ChunkReq(entry, 1, /*seq=*/4).Serialize()));
  ASSERT_GE(after1.payload.size(), 4u);
  uint32_t first_word = 0;
  std::memcpy(&first_word, after1.payload.data(), 4);
  EXPECT_EQ(first_word, nop_word);
  EXPECT_NE(after1.payload, before0.payload);
}

// ---------------------------------------------------------------------------
// Copy-on-write data isolation
// ---------------------------------------------------------------------------

TEST(CowData, WritebackIsPrivatePerSession) {
  const image::Image img = LoopImage();
  MemoryController mc(img, softcache::Style::kSparc, 64);
  const uint32_t addr = mc.DataBase();

  Request write;
  write.type = MsgType::kDataWriteback;
  write.seq = 1;
  write.addr = addr;
  write.client_id = 0;
  write.payload = {0xaa, 0xbb, 0xcc, 0xdd};
  write.length = 4;
  MustParse(mc.Handle(write.Serialize()));

  auto read_four = [&mc, addr](uint32_t client_id) {
    Request req;
    req.type = MsgType::kDataRequest;
    req.seq = 7;
    req.addr = addr;
    req.length = 4;
    req.client_id = client_id;
    return MustParse(mc.Handle(req.Serialize())).payload;
  };

  // The writer reads its own bytes back; a second session still sees the
  // pristine store; the shared store itself never changed.
  EXPECT_EQ(read_four(0), (std::vector<uint8_t>{0xaa, 0xbb, 0xcc, 0xdd}));
  EXPECT_EQ(read_four(1),
            std::vector<uint8_t>(mc.server().shared_data().begin(),
                                 mc.server().shared_data().begin() + 4));
  EXPECT_NE(read_four(1), read_four(0));
  EXPECT_EQ(mc.session(0).private_data_pages(), 1u);
  EXPECT_EQ(mc.session(1).private_data_pages(), 0u);
  EXPECT_EQ(mc.session(0).stats().data_cow_page_faults, 1u);
}

// ---------------------------------------------------------------------------
// Per-session crash isolation
// ---------------------------------------------------------------------------

TEST(SessionIsolation, RestartOneSessionLeavesOthersIntact) {
  const image::Image img = LoopImage();
  MemoryController mc(img, softcache::Style::kSparc, 64);
  const uint32_t addr = mc.DataBase();

  auto write_marker = [&mc, addr](uint32_t client_id, uint8_t marker,
                                  uint32_t epoch) {
    Request write;
    write.type = MsgType::kDataWriteback;
    write.seq = 1;
    write.addr = addr;
    write.client_id = client_id;
    write.epoch = epoch;
    write.payload = {marker, marker, marker, marker};
    write.length = 4;
    return MustParse(mc.Handle(write.Serialize()));
  };
  write_marker(0, 0x11, 0);
  write_marker(1, 0x22, 0);

  mc.RestartSession(1);

  // Only session 1's epoch moved, and only its unflushed write was lost.
  EXPECT_EQ(mc.session(0).epoch(), 0u);
  EXPECT_EQ(mc.session(1).epoch(), 1u);
  auto read_one = [&mc, addr](uint32_t client_id) {
    Request req;
    req.type = MsgType::kDataRequest;
    req.seq = 9;
    req.addr = addr;
    req.length = 1;
    req.client_id = client_id;
    req.epoch = mc.session(client_id).epoch();
    return MustParse(mc.Handle(req.Serialize())).payload[0];
  };
  EXPECT_EQ(read_one(0), 0x11);
  EXPECT_NE(read_one(1), 0x22);

  // A write still stamped with session 1's pre-crash epoch is fenced off;
  // session 0 (same epoch number!) keeps accepting its own.
  const Reply stale = write_marker(1, 0x33, 0);
  EXPECT_EQ(stale.type, MsgType::kError);
  EXPECT_EQ(mc.session(1).stats().stale_epoch_rejects, 1u);
  EXPECT_EQ(mc.session(0).stats().stale_epoch_rejects, 0u);
  const Reply ok = write_marker(0, 0x44, 0);
  EXPECT_EQ(ok.type, MsgType::kWritebackAck);
  EXPECT_EQ(mc.server().stats().restarts, 1u);
  EXPECT_EQ(mc.server().stats().stale_epoch_rejects, 1u);
}

// ---------------------------------------------------------------------------
// Switch demux: spoofed ids never reach another session
// ---------------------------------------------------------------------------

TEST(SwitchDemux, MisroutedIdIsRejectedAtArrivalPort) {
  const image::Image img = LoopImage();
  MemoryController mc(img, softcache::Style::kSparc, 64);
  net::Switch net_switch(
      [&mc](uint32_t port, const std::vector<uint8_t>& frame) {
        return mc.HandlePort(port, frame);
      });
  net::FrameHandler port1 = net_switch.Port(1);

  // A frame claiming client 2 arriving on port 1 is rejected on port 1 and
  // never creates (or touches) session 2.
  const Reply reply = MustParse(port1(ChunkReq(img.entry, 2).Serialize()));
  EXPECT_EQ(reply.type, MsgType::kError);
  EXPECT_EQ(reply.client_id, 1u);
  const std::string message(reply.payload.begin(), reply.payload.end());
  EXPECT_NE(message.find("client id mismatch"), std::string::npos);
  EXPECT_EQ(mc.server().stats().misrouted_frames, 1u);
  EXPECT_EQ(mc.FindSession(2), nullptr);
  EXPECT_EQ(mc.server().stats().translates, 0u);

  // The correctly-stamped frame on the same port sails through.
  const Reply good = MustParse(port1(ChunkReq(img.entry, 1).Serialize()));
  EXPECT_EQ(good.type, MsgType::kChunkReply);
  EXPECT_EQ(net_switch.frames_switched(), 2u);
  EXPECT_EQ(net_switch.port_frames(1), 2u);
}

// ---------------------------------------------------------------------------
// Fleet-size cap: one constant, validated at the boundary, never an assert
// ---------------------------------------------------------------------------

TEST(ClientCap, ValidateClientCountBoundaries) {
  std::string error;
  EXPECT_TRUE(softcache::ValidateClientCount(1, &error));
  EXPECT_TRUE(softcache::ValidateClientCount(4095, &error));
  EXPECT_TRUE(softcache::ValidateClientCount(softcache::kMaxClients, &error));

  // 4097: one past the 12-bit wire id space — rejected with a message that
  // names the actual cap (srun prints this instead of assert-crashing).
  EXPECT_FALSE(softcache::ValidateClientCount(4097, &error));
  EXPECT_NE(error.find("4096"), std::string::npos);
  EXPECT_FALSE(softcache::ValidateClientCount(0, &error));
  EXPECT_FALSE(softcache::ValidateClientCount(-1, &error));
  EXPECT_FALSE(softcache::ValidateClientCount(1'000'000, &error));
}

TEST(ClientCap, FleetConstructsAndTopOfIdSpaceServes) {
  // A real slice of the fleet constructs (256 machines, 256 sessions) —
  // the full 4096-VM cap is exercised by bench_multiclient's synthetic
  // scale sweep instead, since 4096 eager guest images don't belong in a
  // unit test's memory budget.
  const image::Image img = LoopImage();
  softcache::MultiClientConfig config;
  config.clients = 256;
  softcache::MultiClientSystem fleet(img, config);
  EXPECT_EQ(fleet.mc().sessions_active(), 256u);
  EXPECT_NE(fleet.mc().FindSession(255), nullptr);

  // The TOP of the widened id space serves at the session layer: the
  // server opens a session for id kMaxClients-1 and the reply carries the
  // full 12-bit id back.
  MemoryController mc(img, softcache::Style::kSparc, 64);
  const uint32_t top = softcache::kMaxClients - 1;
  const Reply reply = MustParse(mc.Handle(ChunkReq(img.entry, top).Serialize()));
  EXPECT_EQ(reply.type, MsgType::kChunkReply);
  EXPECT_EQ(reply.client_id, top);
  EXPECT_NE(mc.FindSession(top), nullptr);
}

// ---------------------------------------------------------------------------
// Bounded translation memo: heat-ranked eviction, invalidation under churn
// ---------------------------------------------------------------------------

TEST(SharedMemo, BoundedMemoEvictsColdKeepsHot) {
  const image::Image img = LoopImage();
  softcache::McServerConfig server_config;
  server_config.shards = 1;
  server_config.memo_capacity = 4;
  MemoryController mc(img, softcache::Style::kSparc, 64, 1, server_config);
  const uint32_t entry = img.entry;
  const uint32_t text_words = static_cast<uint32_t>(img.text.size() / 4);
  ASSERT_GE(text_words, 16u) << "loop image too small for churn";

  // Make the entry chunk HOT: six distinct sessions demand it.
  for (uint32_t c = 0; c < 6; ++c) {
    MustParse(mc.Handle(ChunkReq(entry, c, /*seq=*/c + 1).Serialize()));
  }
  ASSERT_EQ(mc.server().stats().translates, 1u);

  // Churn: demand 12 distinct cold chunks through a 4-entry memo. The bound
  // must hold throughout and evictions must fire...
  for (uint32_t k = 1; k <= 12; ++k) {
    MustParse(mc.Handle(
        ChunkReq(img.text_base + 4 * (k % text_words), 0, /*seq=*/100 + k)
            .Serialize()));
    EXPECT_LE(mc.server().memo_entries(), server_config.memo_capacity);
  }
  EXPECT_GT(mc.server().stats().memo_evictions, 0u);

  // ...but the heat signal protects the hot entry chunk: re-demanding it is
  // still a memo hit, not a re-translation.
  const uint64_t translates_before = mc.server().stats().translates;
  MustParse(mc.Handle(ChunkReq(entry, 7, /*seq=*/200).Serialize()));
  EXPECT_EQ(mc.server().stats().translates, translates_before);
}

TEST(SharedMemo, InvalidationStaysCorrectUnderEvictionChurn) {
  // Regression: a memo entry can be EVICTED and later re-admitted; a text
  // write must still drop the covering entry so no stale translation
  // survives, and the sharded invalidation must walk every shard.
  const image::Image img = LoopImage();
  softcache::McServerConfig server_config;
  server_config.shards = 2;
  server_config.memo_capacity = 4;
  MemoryController mc(img, softcache::Style::kSparc, 64, 1, server_config);
  const uint32_t entry = img.entry;
  const uint32_t text_words = static_cast<uint32_t>(img.text.size() / 4);

  const Reply before = MustParse(mc.Handle(ChunkReq(entry, 0).Serialize()));
  for (uint32_t k = 1; k <= 10; ++k) {
    MustParse(mc.Handle(
        ChunkReq(img.text_base + 4 * (k % text_words), 0, /*seq=*/k + 1)
            .Serialize()));
  }

  // Client 1 patches the entry word; the shared memo must shed the range
  // whether or not churn already displaced the entry.
  isa::Instr nop;
  nop.op = isa::Opcode::kAddi;
  const uint32_t nop_word = isa::Encode(nop);
  Request write;
  write.type = MsgType::kTextWrite;
  write.seq = 50;
  write.addr = entry;
  write.client_id = 1;
  write.payload.resize(4);
  std::memcpy(write.payload.data(), &nop_word, 4);
  write.length = 4;
  MustParse(mc.Handle(write.Serialize()));

  // Client 0 re-fetches from pristine text: identical artifact, and the
  // memo stays within its bound with evictions accounted.
  const Reply after =
      MustParse(mc.Handle(ChunkReq(entry, 0, /*seq=*/51).Serialize()));
  EXPECT_EQ(after.payload, before.payload);
  EXPECT_EQ(after.aux, before.aux);
  EXPECT_LE(mc.server().memo_entries(), server_config.memo_capacity);
  EXPECT_GT(mc.server().stats().memo_evictions, 0u);

  // Client 1 sees its own patch, never the memoized pristine chunk.
  const Reply patched =
      MustParse(mc.Handle(ChunkReq(entry, 1, /*seq=*/52).Serialize()));
  ASSERT_GE(patched.payload.size(), 4u);
  uint32_t first_word = 0;
  std::memcpy(&first_word, patched.payload.data(), 4);
  EXPECT_EQ(first_word, nop_word);
}

// ---------------------------------------------------------------------------
// Switch port bookkeeping: out-of-order creation, spoof property sweep
// ---------------------------------------------------------------------------

TEST(SwitchDemux, OutOfOrderPortCreationCountsPortsExactly) {
  const image::Image img = LoopImage();
  MemoryController mc(img, softcache::Style::kSparc, 64);
  net::Switch net_switch(
      [&mc](uint32_t port, const std::vector<uint8_t>& frame) {
        return mc.HandlePort(port, frame);
      });

  // Creating port 5 before port 2 must not phantom-create ports 0..4: the
  // port count tracks real creations while the frame table spans the
  // highest-numbered port.
  net::FrameHandler port5 = net_switch.Port(5);
  net::FrameHandler port2 = net_switch.Port(2);
  EXPECT_EQ(net_switch.ports(), 2u);
  EXPECT_EQ(net_switch.port_span(), 6u);

  MustParse(port5(ChunkReq(img.entry, 5).Serialize()));
  MustParse(port2(ChunkReq(img.entry, 2).Serialize()));
  MustParse(port2(ChunkReq(img.entry, 2, /*seq=*/2).Serialize()));
  EXPECT_EQ(net_switch.port_frames(5), 1u);
  EXPECT_EQ(net_switch.port_frames(2), 2u);
  EXPECT_EQ(net_switch.port_frames(0), 0u);
  EXPECT_EQ(net_switch.port_frames(99), 0u);
  EXPECT_EQ(net_switch.frames_switched(), 3u);

  // Re-requesting an existing port's handler is not a new port.
  net::FrameHandler port5_again = net_switch.Port(5);
  EXPECT_EQ(net_switch.ports(), 2u);
}

TEST(SwitchDemux, SpoofedIdPropertySweepNeverCrossesSessions) {
  // Property: for EVERY (arrival port, claimed id) pair with port != id, the
  // frame is rejected at the arrival port, charged to the arrival port's
  // session, and the claimed session is never created by the spoof.
  const image::Image img = LoopImage();
  MemoryController mc(img, softcache::Style::kSparc, 64);
  net::Switch net_switch(
      [&mc](uint32_t port, const std::vector<uint8_t>& frame) {
        return mc.HandlePort(port, frame);
      });
  constexpr uint32_t kPorts = 6;
  std::vector<net::FrameHandler> ports;
  for (uint32_t p = 0; p < kPorts; ++p) ports.push_back(net_switch.Port(p));

  uint64_t spoofs = 0;
  for (uint32_t port = 0; port < kPorts; ++port) {
    for (uint32_t claimed : {0u, 1u, 3u, 5u, 17u, 255u}) {
      const Reply reply = MustParse(ports[port](
          ChunkReq(img.entry, claimed,
                   /*seq=*/static_cast<uint32_t>(spoofs + 1))
              .Serialize()));
      if (claimed == port) {
        EXPECT_EQ(reply.type, MsgType::kChunkReply);
        continue;
      }
      ++spoofs;
      EXPECT_EQ(reply.type, MsgType::kError)
          << "port " << port << " claimed " << claimed;
      EXPECT_EQ(reply.client_id, port);
      if (claimed >= kPorts) {
        // Sessions only exist for real ports; a spoofed id outside the
        // fleet must not have materialized one.
        EXPECT_EQ(mc.FindSession(claimed), nullptr);
      }
    }
  }
  EXPECT_EQ(mc.server().stats().misrouted_frames, spoofs);
  // Spoofed frames never translated anything: only the on-port requests did.
  EXPECT_EQ(mc.server().stats().translates, 1u);
}

// ---------------------------------------------------------------------------
// End to end: N clients behave exactly like N solo runs
// ---------------------------------------------------------------------------

struct SoloBaseline {
  vm::RunResult result;
  std::string output;
  uint64_t translated = 0;
};

SoloBaseline RunSolo(const image::Image& img,
                     const softcache::SoftCacheConfig& config,
                     const std::string& input) {
  softcache::SoftCacheSystem solo(img, config);
  solo.SetInput(input);
  SoloBaseline base;
  base.result = solo.Run();
  if (config.fault.crash_enabled()) {
    EXPECT_TRUE(solo.cc().SyncSession());
  }
  base.output = solo.OutputString();
  base.translated = solo.stats().blocks_translated;
  return base;
}

TEST(MultiClientSystem, CleanRunBitIdenticalToSoloWithSharedTranslation) {
  const image::Image img = LoopImage();
  softcache::MultiClientConfig config;
  config.clients = 4;
  config.base.tcache_bytes = 8 * 1024;

  softcache::MultiClientSystem fleet(img, config);
  const auto results = fleet.RunAll();
  const SoloBaseline solo = RunSolo(img, config.base, "");

  ASSERT_EQ(results.size(), 4u);
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].reason, vm::StopReason::kHalted) << "client " << i;
    EXPECT_EQ(results[i].exit_code, solo.result.exit_code) << "client " << i;
    EXPECT_EQ(results[i].instructions, solo.result.instructions)
        << "client " << i;
    EXPECT_EQ(results[i].cycles, solo.result.cycles) << "client " << i;
    EXPECT_EQ(fleet.OutputString(i), solo.output) << "client " << i;
    EXPECT_EQ(fleet.cc(i).stats().blocks_translated, solo.translated)
        << "client " << i;
  }

  // The tentpole property: the server translated each chunk ONCE, not once
  // per client — total server cuts equal the solo run's, and every other
  // client's fetch was a memo hit.
  EXPECT_EQ(fleet.mc().server().stats().translates, solo.translated);
  EXPECT_GE(fleet.mc().server().stats().translate_memo_hits,
            3 * solo.translated);
  EXPECT_EQ(fleet.mc().sessions_active(), 4u);
  EXPECT_GT(fleet.net_switch().frames_switched(), 0u);
}

TEST(MultiClientSystem, PerClientFaultSchedulesStayBitIdenticalAndIsolated) {
  const image::Image img = LoopImage();
  softcache::MultiClientConfig config;
  config.clients = 3;
  config.base.tcache_bytes = 8 * 1024;
  config.client_faults.resize(3);
  // Client 0: clean. Client 1: lossy link. Client 2: crashing server session.
  config.client_faults[1].seed = 11;
  config.client_faults[1].drop = 0.05;
  config.client_faults[1].corrupt = 0.02;
  config.client_faults[2].seed = 22;
  config.client_faults[2].crash_period = 8;

  softcache::MultiClientSystem fleet(img, config);
  const auto results = fleet.RunAll();
  EXPECT_TRUE(fleet.SyncSessions());

  for (size_t i = 0; i < 3; ++i) {
    softcache::SoftCacheConfig solo_config = config.base;
    solo_config.fault = config.client_faults[i];
    const SoloBaseline solo = RunSolo(img, solo_config, "");
    EXPECT_EQ(results[i].exit_code, solo.result.exit_code) << "client " << i;
    EXPECT_EQ(results[i].instructions, solo.result.instructions)
        << "client " << i;
    EXPECT_EQ(fleet.OutputString(i), solo.output) << "client " << i;
  }

  // Client 2's crashes restarted only ITS session: the fleet saw restarts,
  // but sessions 0 and 1 never changed epoch.
  EXPECT_GT(fleet.mc().server().stats().restarts, 0u);
  EXPECT_EQ(fleet.mc().session(0).epoch(), 0u);
  EXPECT_EQ(fleet.mc().session(1).epoch(), 0u);
  EXPECT_GT(fleet.mc().session(2).epoch(), 0u);
  EXPECT_EQ(fleet.mc().session(2).stats().restarts,
            fleet.mc().server().stats().restarts);
}

TEST(MultiClientSystem, WorkloadInputFlowsPerClient) {
  // Distinct inputs per client: each client's output must match ITS solo
  // run, proving inputs don't bleed across machines.
  auto img = minicc::CompileMiniC(R"(
    int main() {
      int c = getchar();
      putchar(c + 1);
      return c;
    }
  )");
  ASSERT_TRUE(img.ok());
  softcache::MultiClientConfig config;
  config.clients = 2;
  softcache::MultiClientSystem fleet(*img, config);
  fleet.SetInput(0, std::string("A"));
  fleet.SetInput(1, std::string("x"));
  const auto results = fleet.RunAll();
  EXPECT_EQ(results[0].exit_code, 'A');
  EXPECT_EQ(results[1].exit_code, 'x');
  EXPECT_EQ(fleet.OutputString(0), "B");
  EXPECT_EQ(fleet.OutputString(1), "y");
}

TEST(MultiClientSystem, BoundedQueueSurvives256ClientFlood) {
  // 256 clients hammering one server through a 4-deep bounded ticket queue
  // on a thread pool: no deadlock, no unbounded queue growth, and every
  // client still gets its solo-identical result.
  const image::Image img = LoopImage();
  softcache::MultiClientConfig config;
  config.clients = 256;
  config.base.tcache_bytes = 8 * 1024;
  config.server.max_queue = 4;
  config.host_threads = 8;

  softcache::MultiClientSystem fleet(img, config);
  const auto results = fleet.RunAll();
  const SoloBaseline solo = RunSolo(img, config.base, "");

  ASSERT_EQ(results.size(), 256u);
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_EQ(results[i].reason, vm::StopReason::kHalted)
        << "client " << i << ": " << results[i].fault_message;
    EXPECT_EQ(results[i].exit_code, solo.result.exit_code) << "client " << i;
    EXPECT_EQ(results[i].instructions, solo.result.instructions)
        << "client " << i;
  }
  const auto& loop_stats = fleet.server_loop().stats();
  EXPECT_EQ(loop_stats.requests_enqueued,
            fleet.mc().server().stats().requests_served);
  // The bound held: the inbound queue never grew past max_queue.
  EXPECT_LE(loop_stats.max_queue_depth, 4u);
}

// ---------------------------------------------------------------------------
// Metrics: per-client labels, per-session labels, server aggregates
// ---------------------------------------------------------------------------

TEST(MultiClientSystem, MetricsCarryPerClientAndPerSessionLabels) {
  const image::Image img = LoopImage();
  softcache::MultiClientConfig config;
  config.clients = 2;
  softcache::MultiClientSystem fleet(img, config);
  obs::MetricsRegistry registry;
  fleet.RegisterMetrics(&registry);
  fleet.RunAll();

  const auto snap = registry.TakeSnapshot();
  ASSERT_TRUE(snap.counters.count("c0.cc.blocks_translated"));
  ASSERT_TRUE(snap.counters.count("c1.cc.blocks_translated"));
  ASSERT_TRUE(snap.counters.count("c0.net.channel.bytes_to_server"));
  ASSERT_TRUE(snap.counters.count("c1.vm.instructions"));
  ASSERT_TRUE(snap.counters.count("mc.translates"));
  ASSERT_TRUE(snap.counters.count("mc.translate_memo_hits"));
  ASSERT_TRUE(snap.gauges.count("mc.sessions_active"));
  ASSERT_TRUE(snap.counters.count("mc.s0.requests"));
  ASSERT_TRUE(snap.counters.count("mc.s1.requests"));
  ASSERT_TRUE(snap.counters.count("net.switch.frames"));

  // Both clients ran the same program: identical per-client progress, and
  // the switch saw every MC-bound frame.
  EXPECT_EQ(snap.counters.at("c0.vm.instructions"),
            snap.counters.at("c1.vm.instructions"));
  EXPECT_GT(snap.counters.at("c0.cc.blocks_translated"), 0u);
  EXPECT_EQ(snap.gauges.at("mc.sessions_active"), 2.0);
  EXPECT_EQ(snap.counters.at("net.switch.frames"),
            snap.counters.at("mc.requests_served"));
  EXPECT_GT(snap.counters.at("mc.s1.requests"), 0u);
  EXPECT_EQ(snap.counters.at("mc.s0.requests") +
                snap.counters.at("mc.s1.requests"),
            snap.counters.at("mc.requests_served"));
  EXPECT_GT(snap.counters.at("mc.translate_memo_hits"), 0u);
}

}  // namespace
}  // namespace sc
