// SRK32 ISA unit tests: encode/decode round trips, immediate ranges,
// classification predicates and the disassembler.
#include <gtest/gtest.h>

#include "isa/isa.h"
#include "util/rng.h"

namespace sc::isa {
namespace {

TEST(IsaEncode, AluRoundTrip) {
  for (int funct = 0; funct < static_cast<int>(AluOp::kCount); ++funct) {
    Instr in;
    in.op = Opcode::kAlu;
    in.funct = static_cast<AluOp>(funct);
    in.rd = kT0;
    in.rs1 = kA0;
    in.rs2 = kS3;
    EXPECT_EQ(Decode(Encode(in)), in) << "funct " << funct;
  }
}

TEST(IsaEncode, ImmediateRoundTrip) {
  for (const int32_t imm : {-32768, -1, 0, 1, 42, 32767}) {
    const uint32_t word = EncI(Opcode::kAddi, kT1, kSp, imm);
    const Instr in = Decode(word);
    EXPECT_EQ(in.op, Opcode::kAddi);
    EXPECT_EQ(in.imm, imm);
  }
}

TEST(IsaEncode, ZeroExtendedImmediates) {
  // ANDI/ORI/XORI/LUI carry unsigned 16-bit immediates.
  for (const Opcode op : {Opcode::kAndi, Opcode::kOri, Opcode::kXori, Opcode::kLui}) {
    ASSERT_TRUE(HasZeroExtendedImm(op));
    const uint32_t word = EncI(op, kT0, op == Opcode::kLui ? 0 : kT1, 0xffff);
    EXPECT_EQ(Decode(word).imm, 0xffff);
  }
  EXPECT_FALSE(HasZeroExtendedImm(Opcode::kAddi));
}

TEST(IsaEncode, BranchOffsets) {
  for (const int32_t offset : {kImm16Min, -1, 0, 1, kImm16Max}) {
    const uint32_t word = EncBranch(Opcode::kBne, kT0, kT1, offset);
    EXPECT_EQ(Decode(word).imm, offset);
  }
}

TEST(IsaEncode, JumpOffsets) {
  for (const int32_t offset : {kImm26Min, -1, 0, 1, kImm26Max}) {
    const uint32_t word = EncJ(Opcode::kJal, offset);
    EXPECT_EQ(Decode(word).imm, offset);
  }
}

TEST(IsaEncode, TcMissCarriesUnsignedIndex) {
  for (const uint32_t index : {0u, 1u, 1000u, (1u << 26) - 1}) {
    const Instr in = Decode(EncTcMiss(index));
    EXPECT_EQ(in.op, Opcode::kTcMiss);
    EXPECT_EQ(static_cast<uint32_t>(in.imm), index);
  }
}

TEST(IsaDecode, UnknownOpcodeIsIllegal) {
  const uint32_t word = 0xffffffffu;
  EXPECT_EQ(Decode(word).op, Opcode::kIllegal);
}

TEST(IsaDecode, AllOpcodesRoundTripThroughRandomWords) {
  // Any word decodes; re-encoding a successfully decoded word reproduces it
  // exactly (the rewriter depends on patch-in-place never corrupting).
  util::Rng rng(99);
  int valid = 0;
  for (int i = 0; i < 50'000; ++i) {
    const uint32_t word = rng.Next32();
    const Instr in = Decode(word);
    if (in.op == Opcode::kIllegal) continue;
    ++valid;
    EXPECT_EQ(Encode(in), word) << std::hex << word;
  }
  EXPECT_GT(valid, 1000);
}

TEST(IsaPredicates, Classification) {
  EXPECT_TRUE(IsConditionalBranch(Opcode::kBeq));
  EXPECT_TRUE(IsConditionalBranch(Opcode::kBgeu));
  EXPECT_FALSE(IsConditionalBranch(Opcode::kJ));
  EXPECT_TRUE(IsDirectJump(Opcode::kJ));
  EXPECT_TRUE(IsDirectJump(Opcode::kJal));
  EXPECT_FALSE(IsDirectJump(Opcode::kJalr));
  EXPECT_TRUE(IsControlTransfer(Opcode::kJalr));
  EXPECT_TRUE(IsControlTransfer(Opcode::kHalt));
  EXPECT_TRUE(IsControlTransfer(Opcode::kTcMiss));
  EXPECT_FALSE(IsControlTransfer(Opcode::kAddi));
  EXPECT_FALSE(IsControlTransfer(Opcode::kSys));
}

TEST(IsaPredicates, ReturnIdiom) {
  EXPECT_TRUE(IsReturn(EncRet()));
  EXPECT_FALSE(IsReturn(EncI(Opcode::kJalr, kRa, kT0, 0)));   // call via ptr
  EXPECT_FALSE(IsReturn(EncI(Opcode::kJalr, kZero, kT0, 0))); // computed jump
  EXPECT_FALSE(IsReturn(EncI(Opcode::kJalr, kZero, kRa, 4))); // offset return
}

TEST(IsaBranchMath, TargetAndOffsetAreInverse) {
  util::Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const uint32_t pc = static_cast<uint32_t>(rng.Below(1 << 20)) * 4;
    const int32_t offset = static_cast<int32_t>(rng.Range(-1000, 1000));
    const uint32_t target = BranchTarget(pc, offset);
    EXPECT_EQ(OffsetFor(pc, target), offset);
  }
}

TEST(IsaDisassemble, ReadableOutput) {
  EXPECT_EQ(Disassemble(EncAlu(AluOp::kAdd, kT0, kA0, kA1), 0), "add    t0, a0, a1");
  EXPECT_EQ(Disassemble(EncI(Opcode::kLw, kT2, kSp, -8), 0), "lw     t2, -8(sp)");
  EXPECT_EQ(Disassemble(EncRet(), 0), "jalr   zero, ra, 0");
  EXPECT_EQ(Disassemble(EncTcMiss(7), 0), "tcmiss #7");
  // Branch targets render as absolute addresses.
  EXPECT_EQ(Disassemble(EncBranch(Opcode::kBeq, kT0, kZero, 3), 0x100),
            "beq    t0, zero, 0x110");
}

TEST(IsaRegisters, NamesAreUniqueAndComplete) {
  for (int r = 0; r < kNumRegs; ++r) {
    EXPECT_NE(RegName(static_cast<uint8_t>(r)), nullptr);
    for (int other = r + 1; other < kNumRegs; ++other) {
      EXPECT_STRNE(RegName(static_cast<uint8_t>(r)),
                   RegName(static_cast<uint8_t>(other)));
    }
  }
}

}  // namespace
}  // namespace sc::isa
