// Shared-reply coalescing tests: content-addressed chunk digests, the
// broadcast snoop store, the MC's digest-reply path, the event-driven
// McServerLoop, and end-to-end fleet runs where N clients missing the same
// hot chunk cost the server ONE translation and ~ONE wire body.
//
// The invariant under test everywhere: shared-reply mode may change WIRE
// traffic and miss-path timing, never guest-visible behavior — output, exit
// code and instruction counts stay bit-identical to the solo run.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "isa/isa.h"
#include "minicc/compiler.h"
#include "obs/metrics.h"
#include "softcache/content_store.h"
#include "softcache/mc.h"
#include "softcache/protocol.h"
#include "softcache/server_loop.h"
#include "softcache/system.h"
#include "tests/testing.h"
#include "vm/machine.h"

namespace sc {
namespace {

using softcache::ChunkContentStore;
using softcache::ChunkDigest;
using softcache::DigestFromReply;
using softcache::McServerLoop;
using softcache::MemoryController;
using softcache::MsgType;
using softcache::Reply;
using softcache::Request;
using softcache::SharedReplyStats;

image::Image LoopImage() {
  auto img = minicc::CompileMiniC(R"(
    int a[256];
    int main() {
      int sum = 0;
      for (int i = 0; i < 256; i = i + 1) { a[i] = i * 3; }
      for (int i = 0; i < 256; i = i + 1) { sum = sum + a[i]; }
      return sum % 251;
    }
  )");
  SC_CHECK(img.ok());
  return std::move(*img);
}

Request SharedReq(uint32_t addr, uint32_t client_id, uint32_t seq = 1) {
  Request req;
  req.type = MsgType::kChunkSharedRequest;
  req.seq = seq;
  req.addr = addr;
  req.client_id = client_id;
  return req;
}

Reply MustParse(const std::vector<uint8_t>& bytes) {
  auto reply = Reply::Parse(bytes);
  SC_CHECK(reply.ok()) << reply.error().ToString();
  return std::move(*reply);
}

// ---------------------------------------------------------------------------
// ChunkDigest: the content address
// ---------------------------------------------------------------------------

TEST(ChunkDigestTest, DeterministicAndSensitiveToEveryField) {
  const std::vector<uint8_t> words = {1, 2, 3, 4, 5, 6, 7, 8};
  const uint64_t base = ChunkDigest(0x1000, 7, 9, words.data(), words.size());
  EXPECT_EQ(base, ChunkDigest(0x1000, 7, 9, words.data(), words.size()));
  EXPECT_NE(base, ChunkDigest(0x1004, 7, 9, words.data(), words.size()));
  EXPECT_NE(base, ChunkDigest(0x1000, 8, 9, words.data(), words.size()));
  EXPECT_NE(base, ChunkDigest(0x1000, 7, 10, words.data(), words.size()));
  std::vector<uint8_t> flipped = words;
  flipped[3] ^= 1;
  EXPECT_NE(base, ChunkDigest(0x1000, 7, 9, flipped.data(), flipped.size()));
  EXPECT_NE(base, ChunkDigest(0x1000, 7, 9, words.data(), words.size() - 4));
}

TEST(ChunkDigestTest, RoundTripsThroughReplyAuxExtra) {
  Reply reply;
  reply.type = MsgType::kChunkDigestReply;
  reply.aux = 0xdeadbeef;
  reply.extra = 0x01234567;
  EXPECT_EQ(DigestFromReply(reply), 0x01234567'deadbeefull);
}

// ---------------------------------------------------------------------------
// ChunkContentStore: the bounded snoop cache
// ---------------------------------------------------------------------------

std::shared_ptr<const std::vector<uint8_t>> Body(size_t nbytes, uint8_t fill) {
  return std::make_shared<const std::vector<uint8_t>>(nbytes, fill);
}

TEST(ContentStore, SnoopLookupAndDedup) {
  ChunkContentStore store(1024);
  SharedReplyStats stats;
  auto body = Body(64, 0xab);
  store.Snoop(42, 0x2000, 7, 9, body, &stats);
  store.Snoop(42, 0x2000, 7, 9, body, &stats);  // dup: no double accounting
  EXPECT_EQ(store.entries(), 1u);
  EXPECT_EQ(store.bytes(), 64u);
  EXPECT_EQ(stats.snooped_chunks, 1u);
  EXPECT_EQ(stats.snooped_bytes, 64u);

  ChunkContentStore::StoredChunk out;
  ASSERT_TRUE(store.Lookup(42, &out));
  EXPECT_EQ(out.addr, 0x2000u);
  EXPECT_EQ(out.aux, 7u);
  EXPECT_EQ(out.extra, 9u);
  EXPECT_EQ(out.words->size(), 64u);
  EXPECT_FALSE(store.Lookup(43, &out));
}

TEST(ContentStore, FifoEvictionKeepsByteBound) {
  ChunkContentStore store(256);
  SharedReplyStats stats;
  for (uint64_t d = 0; d < 8; ++d) {
    store.Snoop(d, static_cast<uint32_t>(0x1000 + d * 64), 0, 0, Body(64, 1),
                &stats);
    EXPECT_LE(store.bytes(), 256u);
  }
  // 8 x 64B into a 256B store: exactly 4 survive, oldest-first displaced.
  EXPECT_EQ(store.entries(), 4u);
  EXPECT_EQ(stats.store_evictions, 4u);
  ChunkContentStore::StoredChunk out;
  EXPECT_FALSE(store.Lookup(0, &out));
  EXPECT_TRUE(store.Lookup(7, &out));

  // A body larger than the whole store is refused outright.
  store.Snoop(99, 0x9000, 0, 0, Body(512, 2), &stats);
  EXPECT_FALSE(store.Lookup(99, &out));
  EXPECT_LE(store.bytes(), 256u);
}

// ---------------------------------------------------------------------------
// MC digest-reply path: second demander of a published chunk gets 36 bytes
// ---------------------------------------------------------------------------

TEST(SharedReplyMc, SecondSharedRequestCoalescesToDigestFrameGolden) {
  const image::Image img = LoopImage();
  MemoryController mc(img, softcache::Style::kSparc, 64);
  const uint32_t entry = img.entry;

  // First shared demand: full body crosses the medium, digest is published.
  const std::vector<uint8_t> wire0 = mc.Handle(SharedReq(entry, 0).Serialize());
  const Reply r0 = MustParse(wire0);
  ASSERT_EQ(r0.type, MsgType::kChunkReply);
  ASSERT_FALSE(r0.payload.empty());
  const uint64_t digest =
      ChunkDigest(r0.addr, r0.aux, r0.extra, r0.payload.data(),
                  r0.payload.size());
  EXPECT_TRUE(mc.server().DigestPublished(digest));

  // Second session, same chunk: a header-only digest frame — EXACTLY the
  // 32-byte reply header plus the 4-byte trailer, no body.
  const std::vector<uint8_t> wire1 =
      mc.Handle(SharedReq(entry, 1, /*seq=*/2).Serialize());
  EXPECT_EQ(wire1.size(),
            softcache::kReplyHeaderBytes + softcache::kReplyTrailerBytes);
  const Reply r1 = MustParse(wire1);
  EXPECT_EQ(r1.type, MsgType::kChunkDigestReply);
  EXPECT_EQ(r1.client_id, 1u);
  EXPECT_EQ(r1.addr, entry);
  EXPECT_TRUE(r1.payload.empty());
  EXPECT_EQ(DigestFromReply(r1), digest);

  // Server accounting: one translate, one memo hit, one digest reply worth
  // the full body's bytes.
  EXPECT_EQ(mc.server().stats().translates, 1u);
  EXPECT_EQ(mc.server().stats().translate_memo_hits, 1u);
  EXPECT_EQ(mc.server().stats().shared_requests, 2u);
  EXPECT_EQ(mc.server().stats().digest_replies, 1u);
  EXPECT_EQ(mc.server().stats().digest_bytes_saved, r0.payload.size());

  // A PLAIN (non-shared) request never gets a digest reply, published or not.
  Request plain;
  plain.type = MsgType::kChunkRequest;
  plain.seq = 3;
  plain.addr = entry;
  plain.client_id = 2;
  const Reply r2 = MustParse(mc.Handle(plain.Serialize()));
  EXPECT_EQ(r2.type, MsgType::kChunkReply);
  EXPECT_EQ(r2.payload, r0.payload);
}

TEST(SharedReplyMc, CowSessionBypassesDigestPath) {
  const image::Image img = LoopImage();
  MemoryController mc(img, softcache::Style::kSparc, 64);
  const uint32_t entry = img.entry;

  // Publish the pristine entry chunk via client 0.
  const Reply r0 = MustParse(mc.Handle(SharedReq(entry, 0).Serialize()));
  ASSERT_EQ(r0.type, MsgType::kChunkReply);

  // Client 1 writes its text: it faults to a private image. Its shared
  // requests must now always carry the full (private) body — a digest frame
  // would hand it the PRISTINE artifact.
  isa::Instr nop;
  nop.op = isa::Opcode::kAddi;
  const uint32_t nop_word = isa::Encode(nop);
  Request write;
  write.type = MsgType::kTextWrite;
  write.seq = 2;
  write.addr = entry;
  write.client_id = 1;
  write.payload.resize(4);
  std::memcpy(write.payload.data(), &nop_word, 4);
  write.length = 4;
  MustParse(mc.Handle(write.Serialize()));
  ASSERT_TRUE(mc.session(1).has_private_text());

  const Reply r1 = MustParse(mc.Handle(SharedReq(entry, 1, /*seq=*/3).Serialize()));
  EXPECT_EQ(r1.type, MsgType::kChunkReply);
  EXPECT_FALSE(r1.payload.empty());
  EXPECT_NE(r1.payload, r0.payload);

  // Client 2 (pristine text) still coalesces against client 0's publication.
  const Reply r2 = MustParse(mc.Handle(SharedReq(entry, 2, /*seq=*/4).Serialize()));
  EXPECT_EQ(r2.type, MsgType::kChunkDigestReply);
}

// ---------------------------------------------------------------------------
// McServerLoop: the event-driven front end
// ---------------------------------------------------------------------------

TEST(ServerLoop, SingleThreadPassThroughPreservesReplyBytes) {
  McServerLoop loop([](uint32_t port, const std::vector<uint8_t>& frame) {
    std::vector<uint8_t> reply = frame;
    reply.push_back(static_cast<uint8_t>(port));
    return reply;
  });
  const std::vector<uint8_t> frame = {1, 2, 3};
  EXPECT_EQ(loop.Submit(7, frame), (std::vector<uint8_t>{1, 2, 3, 7}));
  EXPECT_EQ(loop.stats().requests_enqueued, 1u);
  EXPECT_EQ(loop.stats().batches_drained, 1u);
  EXPECT_EQ(loop.stats().max_queue_depth, 1u);
}

TEST(ServerLoop, ConcurrentSubmittersOneAtATimeInCore) {
  // The handler asserts mutual exclusion by watching for overlapped entries;
  // every submitter must still get ITS OWN reply back.
  std::atomic<int> in_core{0};
  std::atomic<bool> overlapped{false};
  McServerLoop loop([&](uint32_t port, const std::vector<uint8_t>& frame) {
    if (in_core.fetch_add(1) != 0) overlapped = true;
    std::vector<uint8_t> reply = frame;
    reply.push_back(static_cast<uint8_t>(port));
    in_core.fetch_sub(1);
    return reply;
  });
  constexpr int kThreads = 8;
  constexpr int kFramesEach = 200;
  std::atomic<int> wrong_replies{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&loop, &wrong_replies, t] {
      for (int i = 0; i < kFramesEach; ++i) {
        const std::vector<uint8_t> frame = {static_cast<uint8_t>(t),
                                            static_cast<uint8_t>(i)};
        const auto reply = loop.Submit(static_cast<uint32_t>(t), frame);
        if (reply.size() != 3 || reply[0] != t || reply[1] != (i & 0xff) ||
            reply[2] != t) {
          ++wrong_replies;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(overlapped.load());
  EXPECT_EQ(wrong_replies.load(), 0);
  EXPECT_EQ(loop.stats().requests_enqueued,
            static_cast<uint64_t>(kThreads * kFramesEach));
  // Batch drains can only merge tickets, never lose them.
  EXPECT_LE(loop.stats().batches_drained, loop.stats().requests_enqueued);
  EXPECT_GE(loop.stats().max_queue_depth, 1u);
}

TEST(ServerLoop, BoundedQueueDefersInsteadOfGrowing) {
  // A deliberately slow handler and 8 hot submitters against a 2-deep
  // queue: the bound must hold (depth never exceeds it), every deferred
  // submitter must eventually get its own reply, and deferral must
  // actually engage under this much pressure.
  McServerLoop loop(
      [](uint32_t port, const std::vector<uint8_t>& frame) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        std::vector<uint8_t> reply = frame;
        reply.push_back(static_cast<uint8_t>(port));
        return reply;
      },
      /*max_queue=*/2);
  constexpr int kThreads = 8;
  constexpr int kFramesEach = 50;
  std::atomic<int> wrong_replies{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&loop, &wrong_replies, t] {
      for (int i = 0; i < kFramesEach; ++i) {
        const std::vector<uint8_t> frame = {static_cast<uint8_t>(t),
                                            static_cast<uint8_t>(i)};
        const auto reply = loop.Submit(static_cast<uint32_t>(t), frame);
        if (reply.size() != 3 || reply[0] != t || reply[1] != (i & 0xff) ||
            reply[2] != t) {
          ++wrong_replies;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(wrong_replies.load(), 0);
  EXPECT_EQ(loop.stats().requests_enqueued,
            static_cast<uint64_t>(kThreads * kFramesEach));
  EXPECT_LE(loop.stats().max_queue_depth, 2u);
  EXPECT_GT(loop.stats().requests_deferred, 0u);
}

TEST(ServerLoop, RunExclusiveSerializesAgainstFrames) {
  int handled = 0;
  McServerLoop loop([&handled](uint32_t, const std::vector<uint8_t>& frame) {
    ++handled;
    return frame;
  });
  bool ran = false;
  loop.RunExclusive([&ran] { ran = true; });
  EXPECT_TRUE(ran);
  EXPECT_EQ(loop.stats().exclusive_sections, 1u);
  loop.Submit(0, {1});
  EXPECT_EQ(handled, 1);
}

// ---------------------------------------------------------------------------
// End to end: shared-reply fleets stay bit-identical and cheaper on the wire
// ---------------------------------------------------------------------------

struct SoloBaseline {
  vm::RunResult result;
  std::string output;
};

SoloBaseline RunSolo(const image::Image& img,
                     const softcache::SoftCacheConfig& config) {
  softcache::SoftCacheSystem solo(img, config);
  SoloBaseline base;
  base.result = solo.Run();
  base.output = solo.OutputString();
  return base;
}

uint64_t FleetWireBytes(softcache::MultiClientSystem& fleet, uint32_t clients) {
  uint64_t bytes = 0;
  for (uint32_t i = 0; i < clients; ++i) {
    bytes += fleet.channel(i).stats().total_bytes();
  }
  return bytes;
}

TEST(SharedReplyFleet, BitIdenticalToSoloAndCheaperThanUnsharedFleet) {
  const image::Image img = LoopImage();
  constexpr uint32_t kClients = 4;

  softcache::MultiClientConfig base;
  base.clients = kClients;
  base.base.tcache_bytes = 8 * 1024;

  // Reference: the seed-style fleet, no coalescing.
  softcache::MultiClientSystem plain(img, base);
  const auto plain_results = plain.RunAll();
  const uint64_t plain_wire = FleetWireBytes(plain, kClients);

  softcache::MultiClientConfig shared_cfg = base;
  shared_cfg.base.shared_reply = true;
  shared_cfg.server.shards = 2;
  softcache::MultiClientSystem fleet(img, shared_cfg);
  const auto results = fleet.RunAll();
  const SoloBaseline solo = RunSolo(img, base.base);

  for (uint32_t i = 0; i < kClients; ++i) {
    EXPECT_EQ(results[i].reason, vm::StopReason::kHalted) << "client " << i;
    EXPECT_EQ(results[i].exit_code, solo.result.exit_code) << "client " << i;
    EXPECT_EQ(results[i].instructions, solo.result.instructions)
        << "client " << i;
    EXPECT_EQ(fleet.OutputString(i), solo.output) << "client " << i;
    // Same chunks installed; they just arrived by digest instead of body.
    EXPECT_EQ(results[i].exit_code, plain_results[i].exit_code);
    EXPECT_EQ(results[i].instructions, plain_results[i].instructions);
  }

  // The coalescing actually fired: later demanders rode digest frames backed
  // by their snoop stores, and the fleet's total wire cost dropped.
  const auto& server = fleet.mc().server().stats();
  EXPECT_GT(server.shared_requests, 0u);
  EXPECT_GT(server.digest_replies, 0u);
  EXPECT_GT(server.digest_bytes_saved, 0u);
  EXPECT_LT(FleetWireBytes(fleet, kClients), plain_wire);
  uint64_t digest_hits = 0;
  for (uint32_t i = 0; i < kClients; ++i) {
    digest_hits += fleet.cc(i).stats().shared.digest_hits;
    EXPECT_EQ(fleet.cc(i).stats().shared.digest_misses, 0u) << "client " << i;
  }
  EXPECT_EQ(digest_hits, server.digest_replies);
}

TEST(SharedReplyFleet, HostThreadedRunStaysSoloIdentical) {
  const image::Image img = LoopImage();
  softcache::MultiClientConfig config;
  config.clients = 4;
  config.base.tcache_bytes = 8 * 1024;
  config.base.shared_reply = true;
  config.host_threads = 4;

  softcache::MultiClientSystem fleet(img, config);
  const auto results = fleet.RunAll();
  const SoloBaseline solo = RunSolo(img, [&] {
    softcache::SoftCacheConfig c = config.base;
    c.shared_reply = false;  // solo reference is the seed configuration
    return c;
  }());

  ASSERT_EQ(results.size(), 4u);
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].reason, vm::StopReason::kHalted) << "client " << i;
    EXPECT_EQ(results[i].exit_code, solo.result.exit_code) << "client " << i;
    EXPECT_EQ(results[i].instructions, solo.result.instructions)
        << "client " << i;
    EXPECT_EQ(fleet.OutputString(i), solo.output) << "client " << i;
  }
  // The event loop saw every frame the switch routed.
  EXPECT_EQ(fleet.server_loop().stats().requests_enqueued,
            fleet.net_switch().frames_switched());
}

TEST(SharedReplyFleet, MetricsExposeLoopShardsAndSharedCounters) {
  const image::Image img = LoopImage();
  softcache::MultiClientConfig config;
  config.clients = 2;
  config.base.shared_reply = true;
  config.server.shards = 2;
  softcache::MultiClientSystem fleet(img, config);
  obs::MetricsRegistry registry;
  fleet.RegisterMetrics(&registry);
  fleet.RunAll();

  const auto snap = registry.TakeSnapshot();
  ASSERT_TRUE(snap.counters.count("mc.loop.requests_enqueued"));
  ASSERT_TRUE(snap.counters.count("mc.shared_requests"));
  ASSERT_TRUE(snap.counters.count("mc.digest_replies"));
  ASSERT_TRUE(snap.counters.count("mc.digest_bytes_saved"));
  ASSERT_TRUE(snap.counters.count("mc.translate_memo_evictions"));
  ASSERT_TRUE(snap.gauges.count("mc.shard0.memo_entries"));
  ASSERT_TRUE(snap.gauges.count("mc.shard1.memo_entries"));
  ASSERT_TRUE(snap.counters.count("c0.shared.snooped_chunks"));
  ASSERT_TRUE(snap.counters.count("c1.shared.digest_hits"));
  EXPECT_GT(snap.counters.at("mc.loop.requests_enqueued"), 0u);
  EXPECT_GT(snap.counters.at("mc.shared_requests"), 0u);
  // Every translate landed in exactly one shard.
  EXPECT_EQ(snap.gauges.at("mc.shard0.memo_entries") +
                snap.gauges.at("mc.shard1.memo_entries"),
            static_cast<double>(fleet.mc().server().memo_entries()));
}

}  // namespace
}  // namespace sc
