// Software D-cache tests (the paper's Section 3 design): equivalence with
// direct execution, slow-hit guarantee, prediction behaviour, write-back
// coherence with the server, and the stack cache under deep recursion.
#include <gtest/gtest.h>

#include "dcache/dcache.h"
#include "minicc/compiler.h"
#include "net/channel.h"
#include "softcache/mc.h"
#include "softcache/system.h"
#include "vm/machine.h"

namespace sc {
namespace {

using dcache::DataCache;
using dcache::DCacheConfig;
using dcache::Prediction;

image::Image Compile(std::string_view source) {
  auto img = minicc::CompileMiniC(source);
  SC_CHECK(img.ok()) << img.error().ToString();
  return std::move(*img);
}

struct DcacheRun {
  vm::RunResult result;
  std::string output;
  dcache::DCacheStats stats;
  std::vector<uint8_t> server_data;  // MC view after flush
  uint32_t server_data_base = 0;
};

DcacheRun RunWithDcache(const image::Image& img, const DCacheConfig& config,
                        const std::string& input = "") {
  vm::Machine machine;
  machine.LoadImage(img);
  machine.SetInput(std::vector<uint8_t>(input.begin(), input.end()));
  softcache::MemoryController mc(img, softcache::Style::kSparc, 64);
  net::Channel channel;
  DataCache cache(machine, mc, channel, config);
  cache.Attach();
  DcacheRun run;
  run.result = machine.Run(2'000'000'000);
  cache.FlushAll();
  run.output = machine.OutputString();
  run.stats = cache.stats();
  run.server_data = mc.data();
  run.server_data_base = mc.DataBase();
  return run;
}

// Runs with and without the D-cache; exit code, output, and the final data
// segment (globals + bss + heap) must match exactly.
void ExpectDcacheEquivalent(std::string_view source, const DCacheConfig& config,
                            const std::string& input = "") {
  const image::Image img = Compile(source);

  vm::Machine native;
  native.LoadImage(img);
  native.SetInput(std::vector<uint8_t>(input.begin(), input.end()));
  const vm::RunResult native_result = native.Run(2'000'000'000);
  ASSERT_EQ(native_result.reason, vm::StopReason::kHalted)
      << native_result.fault_message;

  const DcacheRun cached = RunWithDcache(img, config, input);
  EXPECT_EQ(cached.result.reason, vm::StopReason::kHalted)
      << cached.result.fault_message;
  EXPECT_EQ(cached.result.exit_code, native_result.exit_code);
  EXPECT_EQ(cached.output, native.OutputString());

  // Compare the flushed server memory against native machine memory over
  // data + bss + heap (the stack holds dead values and is excluded).
  const uint32_t lo = img.data_base;
  const uint32_t hi = img.heap_base() + 64 * 1024;  // data + modest heap span
  for (uint32_t addr = lo; addr < hi; ++addr) {
    const uint8_t server = cached.server_data[addr - cached.server_data_base];
    const uint8_t direct = *(native.mem_data() + addr);
    ASSERT_EQ(server, direct) << "data divergence at 0x" << std::hex << addr;
  }
}

constexpr const char* kArraySumProgram = R"(
  int table[2048];
  int main() {
    for (int i = 0; i < 2048; i++) table[i] = i * 3 + 1;
    int sum = 0;
    for (int pass = 0; pass < 4; pass++)
      for (int i = 0; i < 2048; i++) sum += table[i];
    return sum % 251;
  }
)";

constexpr const char* kPointerChaseProgram = R"(
  int next_idx[1024];
  int main() {
    /* permutation walk: adversarial for prediction */
    for (int i = 0; i < 1024; i++) next_idx[i] = (i * 419 + 7) % 1024;
    int pos = 0;
    int count = 0;
    for (int step = 0; step < 8000; step++) {
      pos = next_idx[pos];
      count += pos & 1;
    }
    return count % 251;
  }
)";

constexpr const char* kGlobalScalarProgram = R"(
  int counter = 0;
  int limit = 5000;
  int step_size = 3;
  int main() {
    while (counter < limit) counter += step_size;
    return counter % 251;
  }
)";

constexpr const char* kRecursionProgram = R"(
  int deep(int n, int salt) {
    int local[16];
    for (int i = 0; i < 16; i++) local[i] = n * i + salt;
    if (n == 0) return local[5];
    return deep(n - 1, local[3] % 100) + local[7] % 3;
  }
  int main() { return deep(200, 1) % 251; }
)";

constexpr const char* kHeapProgram = R"(
  int main() {
    int *a = (int*)malloc(4000);
    int *b = (int*)malloc(4000);
    for (int i = 0; i < 1000; i++) { a[i] = i; b[i] = 2 * i; }
    int sum = 0;
    for (int i = 0; i < 1000; i++) sum += a[i] + b[i];
    free((char*)a);
    free((char*)b);
    return sum % 251;
  }
)";

TEST(DcacheEquivalence, ArraySums) {
  ExpectDcacheEquivalent(kArraySumProgram, DCacheConfig{});
}

TEST(DcacheEquivalence, PointerChase) {
  ExpectDcacheEquivalent(kPointerChaseProgram, DCacheConfig{});
}

TEST(DcacheEquivalence, GlobalScalars) {
  ExpectDcacheEquivalent(kGlobalScalarProgram, DCacheConfig{});
}

TEST(DcacheEquivalence, DeepRecursionStackCache) {
  DCacheConfig config;
  config.scache_bytes = 1024;  // much smaller than 200 frames
  ExpectDcacheEquivalent(kRecursionProgram, config);
}

TEST(DcacheEquivalence, HeapAllocation) {
  ExpectDcacheEquivalent(kHeapProgram, DCacheConfig{});
}

TEST(DcacheEquivalence, TinyDcacheThrashes) {
  DCacheConfig config;
  config.dcache_blocks = 4;
  config.block_bytes = 16;
  ExpectDcacheEquivalent(kArraySumProgram, config);
}

TEST(DcacheEquivalence, EveryPredictionPolicy) {
  for (const Prediction pred :
       {Prediction::kNone, Prediction::kLastIndex, Prediction::kStride,
        Prediction::kSecondChance}) {
    DCacheConfig config;
    config.prediction = pred;
    ExpectDcacheEquivalent(kPointerChaseProgram, config);
  }
}

TEST(DcacheEquivalence, IoThroughHook) {
  DCacheConfig config;
  ExpectDcacheEquivalent(R"(
    int main() {
      char buf[64];
      int n = read_bytes(buf, 64);
      int sum = 0;
      for (int i = 0; i < n; i++) sum += (int)buf[i];
      write_bytes(buf, n);
      return sum % 251;
    }
  )", config, "hello dcache world");
}


TEST(DcacheEquivalence, WriteThroughPolicy) {
  DCacheConfig config;
  config.write_through = true;
  ExpectDcacheEquivalent(kArraySumProgram, config);
  ExpectDcacheEquivalent(kHeapProgram, config);
}

TEST(DcacheBehaviour, WriteThroughPushesEveryStoreBlock) {
  const image::Image img = Compile(kGlobalScalarProgram);
  DCacheConfig config;
  config.write_through = true;
  config.pin_scalar_globals = false;  // force stores through the dcache
  const DcacheRun run = RunWithDcache(img, config);
  ASSERT_EQ(run.result.reason, vm::StopReason::kHalted);
  EXPECT_GT(run.stats.write_throughs, 1000u);
  // Every committed write-through is a writeback message.
  EXPECT_GE(run.stats.writebacks, run.stats.write_throughs - 1);
}

TEST(DcacheBehaviour, BankConflictsTracked) {
  const image::Image img = Compile(kArraySumProgram);
  DCacheConfig banked;
  banked.banks = 4;
  const DcacheRun with_banks = RunWithDcache(img, banked);
  ASSERT_EQ(with_banks.result.reason, vm::StopReason::kHalted);
  EXPECT_GT(with_banks.stats.accesses, 0u);
  EXPECT_GT(with_banks.stats.bank_conflicts, 0u);
  EXPECT_LT(with_banks.stats.bank_conflicts, with_banks.stats.accesses);
  // More banks can only reduce (or equal) conflicts.
  DCacheConfig wide = banked;
  wide.banks = 8;
  const DcacheRun more_banks = RunWithDcache(img, wide);
  EXPECT_LE(more_banks.stats.bank_conflicts, with_banks.stats.bank_conflicts);
  DCacheConfig single;
  single.banks = 1;
  const DcacheRun no_banks = RunWithDcache(img, single);
  EXPECT_EQ(no_banks.stats.bank_conflicts, 0u);  // tracking disabled at 1 bank
}

TEST(DcacheBehaviour, SequentialScanPredictsWell) {
  const image::Image img = Compile(kArraySumProgram);
  DCacheConfig config;
  config.prediction = Prediction::kStride;
  const DcacheRun run = RunWithDcache(img, config);
  ASSERT_EQ(run.result.reason, vm::StopReason::kHalted);
  // Sequential scans with stride prediction: prediction hit rate is high.
  EXPECT_GT(run.stats.prediction_probes, 0u);
  const double acc = static_cast<double>(run.stats.prediction_hits) /
                     static_cast<double>(run.stats.prediction_probes);
  EXPECT_GT(acc, 0.5);
}

TEST(DcacheBehaviour, SlowHitsWhenPredictionDisabled) {
  const image::Image img = Compile(kArraySumProgram);
  DCacheConfig config;
  config.prediction = Prediction::kNone;
  const DcacheRun run = RunWithDcache(img, config);
  ASSERT_EQ(run.result.reason, vm::StopReason::kHalted);
  EXPECT_EQ(run.stats.fast_hits, 0u);
  EXPECT_GT(run.stats.slow_hits, 0u);
}

TEST(DcacheBehaviour, PinnedScalarsBypassTagChecks) {
  const image::Image img = Compile(kGlobalScalarProgram);
  DCacheConfig with_pin;
  with_pin.pin_scalar_globals = true;
  const DcacheRun pinned = RunWithDcache(img, with_pin);
  DCacheConfig no_pin;
  no_pin.pin_scalar_globals = false;
  const DcacheRun unpinned = RunWithDcache(img, no_pin);
  ASSERT_EQ(pinned.result.reason, vm::StopReason::kHalted);
  ASSERT_EQ(unpinned.result.reason, vm::StopReason::kHalted);
  EXPECT_EQ(pinned.result.exit_code, unpinned.result.exit_code);
  // The pinned run resolves the hot scalars without any cache machinery.
  EXPECT_GT(pinned.stats.pinned_hits, 1000u);
  EXPECT_LT(pinned.stats.cycles, unpinned.stats.cycles);
}

TEST(DcacheBehaviour, WritebacksReachTheServer) {
  const image::Image img = Compile(kArraySumProgram);
  DCacheConfig config;
  config.dcache_blocks = 8;  // force capacity write-backs mid-run
  const DcacheRun run = RunWithDcache(img, config);
  ASSERT_EQ(run.result.reason, vm::StopReason::kHalted);
  EXPECT_GT(run.stats.writebacks, 0u);
  // Spot-check a value on the server.
  const image::Symbol* table = img.FindSymbol("table");
  ASSERT_NE(table, nullptr);
  const uint32_t off = table->addr - run.server_data_base;
  const uint32_t v = static_cast<uint32_t>(run.server_data[off + 40]) |
                     static_cast<uint32_t>(run.server_data[off + 41]) << 8 |
                     static_cast<uint32_t>(run.server_data[off + 42]) << 16 |
                     static_cast<uint32_t>(run.server_data[off + 43]) << 24;
  EXPECT_EQ(v, 10u * 3 + 1);
}

TEST(DcacheBehaviour, GuaranteedLatencyIsTheSlowHitBound) {
  const image::Image img = Compile(kArraySumProgram);
  vm::Machine machine;
  machine.LoadImage(img);
  softcache::MemoryController mc(img, softcache::Style::kSparc, 64);
  net::Channel channel;
  DCacheConfig config;
  config.dcache_blocks = 64;
  DataCache cache(machine, mc, channel, config);
  // 64 blocks -> 6 search steps.
  EXPECT_EQ(cache.GuaranteedLatencyCycles(),
            config.slow_hit_base_cycles + 6 * config.slow_hit_step_cycles);
}

TEST(DcacheBehaviour, StackCacheSpillsOnDeepRecursion) {
  const image::Image img = Compile(kRecursionProgram);
  DCacheConfig config;
  config.scache_bytes = 1024;
  const DcacheRun run = RunWithDcache(img, config);
  ASSERT_EQ(run.result.reason, vm::StopReason::kHalted);
  EXPECT_GT(run.stats.scache_spills, 0u);
  EXPECT_GT(run.stats.scache_fills, run.stats.scache_spills / 2);
}

TEST(DcacheBehaviour, LargeScacheAvoidsSpills) {
  const image::Image img = Compile(R"(
    int shallow(int n) { return n <= 0 ? 0 : shallow(n - 1) + n; }
    int main() { int s = 0; for (int i = 0; i < 50; i++) s += shallow(8); return s % 251; }
  )");
  DCacheConfig config;
  config.scache_bytes = 8192;
  const DcacheRun run = RunWithDcache(img, config);
  ASSERT_EQ(run.result.reason, vm::StopReason::kHalted);
  // The whole (shallow) stack fits: no spill traffic in steady state.
  EXPECT_EQ(run.stats.scache_spills, 0u);
}

}  // namespace
}  // namespace sc
