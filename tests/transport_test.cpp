// Transport and reliability-layer tests: deterministic fault injection,
// retry/timeout/backoff behaviour, strict seq matching, the MC's idempotent
// replay cache, and end-to-end equivalence of every workload over a lossy
// link (the repo's central equivalence property, now under datagram
// semantics).
#include <gtest/gtest.h>

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dcache/dcache.h"
#include "minicc/compiler.h"
#include "net/transport.h"
#include "softcache/mc.h"
#include "softcache/protocol.h"
#include "softcache/reliable.h"
#include "softcache/system.h"
#include "vm/machine.h"
#include "workloads/workloads.h"

namespace sc {
namespace {

using softcache::LinkStats;
using softcache::MemoryController;
using softcache::MsgType;
using softcache::ReliableLink;
using softcache::Reply;
using softcache::Request;
using softcache::RetryConfig;

image::Image TestImage() {
  auto img = minicc::CompileMiniC(R"(
    int f(int x) { return x * 2 + 1; }
    int main() { return f(20); }
  )");
  SC_CHECK(img.ok());
  return std::move(*img);
}

// ---------------------------------------------------------------------------
// Transport unit tests
// ---------------------------------------------------------------------------

TEST(Transport, LoopbackPreservesChannelAccounting) {
  net::Channel channel;
  net::LoopbackTransport transport(
      channel, [](const std::vector<uint8_t>& frame) {
        std::vector<uint8_t> reply(frame);
        reply.push_back(0xee);
        return reply;
      });
  const std::vector<uint8_t> frame(24, 0xab);
  const uint64_t send_cycles = transport.Send(frame);
  EXPECT_EQ(send_cycles, channel.CyclesFor(24));
  EXPECT_EQ(channel.stats().messages_to_server, 1u);
  EXPECT_EQ(channel.stats().bytes_to_server, 24u);

  std::vector<uint8_t> reply;
  uint64_t recv_cycles = 0;
  ASSERT_TRUE(transport.Recv(&reply, &recv_cycles));
  EXPECT_EQ(reply.size(), 25u);
  EXPECT_EQ(recv_cycles, channel.CyclesFor(25));
  EXPECT_EQ(channel.stats().messages_to_client, 1u);
  // Exactly-once: nothing else pending.
  EXPECT_FALSE(transport.Recv(&reply, &recv_cycles));
}

TEST(Transport, FaultyTransportIsDeterministicPerSeed) {
  const auto run = [](uint64_t seed) {
    net::Channel channel;
    net::FaultConfig fault;
    fault.seed = seed;
    fault.drop = 0.2;
    fault.corrupt = 0.2;
    fault.duplicate = 0.2;
    fault.delay = 0.2;
    net::FaultyTransport transport(
        channel, [](const std::vector<uint8_t>& frame) { return frame; },
        fault);
    std::vector<std::vector<uint8_t>> delivered;
    std::vector<uint8_t> frame(32);
    for (int i = 0; i < 500; ++i) {
      frame[0] = static_cast<uint8_t>(i);
      transport.Send(frame);
      std::vector<uint8_t> out;
      uint64_t cycles = 0;
      while (transport.Recv(&out, &cycles)) delivered.push_back(out);
    }
    return std::make_pair(delivered, transport.stats());
  };
  const auto [delivered_a, stats_a] = run(99);
  const auto [delivered_b, stats_b] = run(99);
  EXPECT_EQ(delivered_a, delivered_b);
  EXPECT_EQ(stats_a.frames_dropped, stats_b.frames_dropped);
  EXPECT_EQ(stats_a.frames_corrupted, stats_b.frames_corrupted);
  EXPECT_EQ(stats_a.frames_duplicated, stats_b.frames_duplicated);
  EXPECT_EQ(stats_a.frames_delayed, stats_b.frames_delayed);
  // Every fault class actually fired at these rates.
  EXPECT_GT(stats_a.frames_dropped, 0u);
  EXPECT_GT(stats_a.frames_corrupted, 0u);
  EXPECT_GT(stats_a.frames_duplicated, 0u);
  EXPECT_GT(stats_a.frames_delayed, 0u);
  // A different seed produces a different fault pattern.
  const auto [delivered_c, stats_c] = run(100);
  EXPECT_NE(delivered_a, delivered_c);
}

// ---------------------------------------------------------------------------
// ReliableLink behaviour
// ---------------------------------------------------------------------------

// A transport the test scripts directly: `on_send` decides what lands in
// the inbox for each transmitted frame.
class ScriptedTransport : public net::Transport {
 public:
  using SendHook =
      std::function<void(const std::vector<uint8_t>&,
                         std::deque<std::vector<uint8_t>>*)>;
  explicit ScriptedTransport(SendHook on_send) : on_send_(std::move(on_send)) {}

  uint64_t Send(const std::vector<uint8_t>& frame) override {
    ++stats_.frames_sent;
    on_send_(frame, &inbox_);
    return 0;
  }
  bool Recv(std::vector<uint8_t>* frame, uint64_t* cycles) override {
    if (inbox_.empty()) return false;
    *frame = std::move(inbox_.front());
    inbox_.pop_front();
    *cycles = 0;
    ++stats_.frames_delivered;
    return true;
  }
  const net::TransportStats& stats() const override { return stats_; }

 private:
  SendHook on_send_;
  std::deque<std::vector<uint8_t>> inbox_;
  net::TransportStats stats_;
};

Request ChunkRequest(uint32_t seq, uint32_t addr) {
  Request request;
  request.type = MsgType::kChunkRequest;
  request.seq = seq;
  request.addr = addr;
  return request;
}

TEST(ReliableLink, RecoversThroughHeavyFaults) {
  const image::Image img = TestImage();
  MemoryController mc(img, softcache::Style::kSparc, 64);
  net::Channel channel;
  net::FaultConfig fault;
  fault.seed = 1;
  fault.drop = 0.2;
  fault.corrupt = 0.2;
  fault.duplicate = 0.2;
  LinkStats stats;
  ReliableLink link(softcache::MakeMcTransport(mc, channel, fault), {},
                    &stats);
  for (uint32_t seq = 1; seq <= 200; ++seq) {
    uint64_t cycles = 0;
    auto reply = link.Call(ChunkRequest(seq, img.entry), &cycles);
    ASSERT_TRUE(reply.ok()) << reply.error().ToString();
    EXPECT_EQ(reply->seq, seq);
    EXPECT_EQ(reply->type, MsgType::kChunkReply);
    EXPECT_GT(cycles, 0u);
  }
  EXPECT_EQ(stats.requests, 200u);
  EXPECT_GT(stats.retries, 0u);
  EXPECT_GT(stats.timeouts, 0u);
  EXPECT_GT(stats.corrupt_frames, 0u);
  EXPECT_GT(stats.stale_replies, 0u);
  EXPECT_EQ(stats.giveups, 0u);
}

TEST(ReliableLink, DiscardsMismatchedSeqReplies) {
  // The transport answers every send with a stale reply (wrong seq) first
  // and the genuine one second; the link must skip the impostor.
  auto transport = std::make_unique<ScriptedTransport>(
      [](const std::vector<uint8_t>& frame,
         std::deque<std::vector<uint8_t>>* inbox) {
        auto request = Request::Parse(frame);
        SC_CHECK(request.ok());
        Reply stale;
        stale.type = MsgType::kChunkReply;
        stale.seq = request->seq + 17;
        inbox->push_back(stale.Serialize());
        Reply genuine;
        genuine.type = MsgType::kChunkReply;
        genuine.seq = request->seq;
        genuine.addr = request->addr;
        inbox->push_back(genuine.Serialize());
      });
  LinkStats stats;
  ReliableLink link(std::move(transport), {}, &stats);
  uint64_t cycles = 0;
  auto reply = link.Call(ChunkRequest(5, 0x1000), &cycles);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->seq, 5u);
  EXPECT_EQ(reply->addr, 0x1000u);
  EXPECT_EQ(stats.stale_replies, 1u);
  EXPECT_EQ(stats.retries, 0u);
}

TEST(ReliableLink, GivesUpAfterBoundedBackoff) {
  // A black-hole transport: every frame vanishes. The link must back off
  // exponentially and give up after exactly max_attempts sends.
  auto transport = std::make_unique<ScriptedTransport>(
      [](const std::vector<uint8_t>&, std::deque<std::vector<uint8_t>>*) {});
  ScriptedTransport* raw = transport.get();
  RetryConfig retry;
  retry.timeout_cycles = 10;
  retry.max_timeout_cycles = 1000;
  retry.max_attempts = 4;
  LinkStats stats;
  ReliableLink link(std::move(transport), retry, &stats);
  uint64_t cycles = 0;
  auto reply = link.Call(ChunkRequest(1, 0x1000), &cycles);
  EXPECT_FALSE(reply.ok());
  EXPECT_EQ(raw->stats().frames_sent, 4u);
  EXPECT_EQ(stats.retries, 3u);
  EXPECT_EQ(stats.timeouts, 4u);
  EXPECT_EQ(stats.giveups, 1u);
  // Backoff waits: 10 + 20 + 40 + 80 cycles (transport itself is free).
  EXPECT_EQ(cycles, 150u);
}

TEST(ReliableLink, DeadlineCapsStallUnderTotalLoss) {
  // Same black hole, but a per-op cycle deadline: the link must stop as
  // soon as the charged cycles cross the deadline, long before the attempt
  // budget runs out, and say so in the error.
  auto transport = std::make_unique<ScriptedTransport>(
      [](const std::vector<uint8_t>&, std::deque<std::vector<uint8_t>>*) {});
  ScriptedTransport* raw = transport.get();
  RetryConfig retry;
  retry.timeout_cycles = 10;
  retry.max_timeout_cycles = 1000;
  retry.max_attempts = 1000;
  retry.attempt_deadline_cycles = 100;
  LinkStats stats;
  ReliableLink link(std::move(transport), retry, &stats);
  uint64_t cycles = 0;
  auto reply = link.Call(ChunkRequest(1, 0x1000), &cycles);
  EXPECT_FALSE(reply.ok());
  EXPECT_NE(reply.error().message.find("deadline"), std::string::npos)
      << reply.error().message;
  EXPECT_EQ(stats.giveups, 1u);
  // Waits 10 + 20 + 40 + 80 = 150: the first total at/past the deadline.
  EXPECT_EQ(cycles, 150u);
  EXPECT_EQ(raw->stats().frames_sent, 4u);
}

TEST(ReliableLink, JitterDecorrelatesBackoffButStaysSeeded) {
  auto make_link = [](uint64_t seed, double jitter, LinkStats* stats,
                      uint64_t* cycles) {
    auto transport = std::make_unique<ScriptedTransport>(
        [](const std::vector<uint8_t>&,
           std::deque<std::vector<uint8_t>>*) {});
    RetryConfig retry;
    retry.timeout_cycles = 1000;
    retry.max_timeout_cycles = 100000;
    retry.max_attempts = 6;
    retry.backoff_jitter = jitter;
    retry.jitter_seed = seed;
    ReliableLink link(std::move(transport), retry, stats);
    auto reply = link.Call(ChunkRequest(1, 0x1000), cycles);
    EXPECT_FALSE(reply.ok());
  };
  // jitter = 0 reproduces the exact historical doubling.
  LinkStats s0;
  uint64_t base = 0;
  make_link(1, 0.0, &s0, &base);
  EXPECT_EQ(base, 1000u + 2000 + 4000 + 8000 + 16000 + 32000);
  // Same seed, same jittered schedule; different seed, different schedule.
  LinkStats s1, s2, s3;
  uint64_t a = 0, b = 0, c = 0;
  make_link(7, 0.5, &s1, &a);
  make_link(7, 0.5, &s2, &b);
  make_link(8, 0.5, &s3, &c);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  // Every jittered total stays inside the [0.5x, 1.5x) envelope.
  EXPECT_GE(a, base / 2);
  EXPECT_LT(a, base + base / 2);
  EXPECT_GE(c, base / 2);
  EXPECT_LT(c, base + base / 2);
}

TEST(ReliableLink, TotalLossDegradesToCleanFailEndToEnd) {
  // 100% frame loss: the guest cannot make progress past its first miss,
  // and the run must degrade to a clean Fail (a fault with the transport's
  // giveup message), not a hang or a crash.
  const image::Image img = TestImage();
  softcache::SoftCacheConfig config;
  config.fault.seed = 3;
  config.fault.drop = 1.0;
  config.retry.timeout_cycles = 10;
  config.retry.max_timeout_cycles = 1000;
  config.retry.max_attempts = 8;
  config.retry.attempt_deadline_cycles = 500;
  softcache::SoftCacheSystem system(img, config);
  const vm::RunResult result = system.Run(1'000'000);
  EXPECT_EQ(result.reason, vm::StopReason::kFault);
  EXPECT_NE(result.fault_message.find("transport:"), std::string::npos)
      << result.fault_message;
  EXPECT_GT(system.stats().net.giveups, 0u);
}

// ---------------------------------------------------------------------------
// MC replay cache (write idempotency)
// ---------------------------------------------------------------------------

TEST(McReplayCache, SuppressesRetransmittedWrites) {
  const image::Image img = TestImage();
  MemoryController mc(img, softcache::Style::kSparc, 64);

  Request write;
  write.type = MsgType::kDataWriteback;
  write.seq = 500;
  write.addr = mc.DataBase();
  write.length = 4;
  write.payload = {0xde, 0xad, 0xbe, 0xef};
  const auto frame = write.Serialize();

  const auto first = mc.Handle(frame);
  EXPECT_EQ(mc.replays_suppressed(), 0u);
  auto first_reply = Reply::Parse(first);
  ASSERT_TRUE(first_reply.ok());
  EXPECT_EQ(first_reply->type, MsgType::kWritebackAck);

  // The identical retransmitted frame is answered from cache, bit for bit.
  const auto second = mc.Handle(frame);
  EXPECT_EQ(mc.replays_suppressed(), 1u);
  EXPECT_EQ(first, second);
  EXPECT_EQ(mc.data()[0], 0xde);

  // A *different* write with a fresh seq is applied normally.
  Request next = write;
  next.seq = 501;
  next.payload = {0x01, 0x02, 0x03, 0x04};
  auto reply = Reply::Parse(mc.Handle(next.Serialize()));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->type, MsgType::kWritebackAck);
  EXPECT_EQ(mc.replays_suppressed(), 1u);
  EXPECT_EQ(mc.data()[0], 0x01);
}

TEST(McReplayCache, DistinguishesPayloadsUnderSameSeq) {
  // Same (type, seq, addr) but different payload must NOT replay — it is a
  // different write (a buggy or hostile client, not a retransmission).
  const image::Image img = TestImage();
  MemoryController mc(img, softcache::Style::kSparc, 64);
  Request write;
  write.type = MsgType::kDataWriteback;
  write.seq = 7;
  write.addr = mc.DataBase();
  write.length = 4;
  write.payload = {1, 1, 1, 1};
  (void)mc.Handle(write.Serialize());
  write.payload = {2, 2, 2, 2};
  (void)mc.Handle(write.Serialize());
  EXPECT_EQ(mc.replays_suppressed(), 0u);
  EXPECT_EQ(mc.data()[0], 2);
}

// ---------------------------------------------------------------------------
// End-to-end: every workload over a lossy link
// ---------------------------------------------------------------------------

class FaultedWorkloadTest : public ::testing::TestWithParam<std::string> {};

TEST_P(FaultedWorkloadTest, CompletesIdenticallyUnderFaults) {
  const auto* spec = workloads::FindWorkload(GetParam());
  ASSERT_NE(spec, nullptr);
  const image::Image img = workloads::CompileWorkload(*spec);
  const auto input = workloads::MakeInput(spec->name, 1);

  vm::Machine native;
  native.LoadImage(img);
  native.SetInput(input);
  const vm::RunResult native_result = native.Run(4'000'000'000ull);
  ASSERT_EQ(native_result.reason, vm::StopReason::kHalted);

  softcache::SoftCacheConfig config;
  config.style = softcache::Style::kSparc;
  config.tcache_bytes = 64 * 1024;
  config.fault.seed = 1234;
  config.fault.drop = 0.1;
  config.fault.corrupt = 0.1;
  config.fault.duplicate = 0.1;
  softcache::SoftCacheSystem system(img, config);
  system.SetInput(input);
  const vm::RunResult cached = system.Run(8'000'000'000ull);
  ASSERT_EQ(cached.reason, vm::StopReason::kHalted) << cached.fault_message;
  EXPECT_EQ(cached.exit_code, native_result.exit_code);
  EXPECT_EQ(system.OutputString(), native.OutputString());
  EXPECT_GT(system.stats().net.retries, 0u);
  EXPECT_EQ(system.stats().net.giveups, 0u);
  system.cc().CheckInvariants();
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, FaultedWorkloadTest,
                         ::testing::Values("compress95", "adpcm_enc",
                                           "adpcm_dec", "gzip", "cjpeg",
                                           "mpeg2enc", "hextobdd", "sha256",
                                           "dijkstra"),
                         [](const auto& param_info) { return param_info.param; });

TEST(FaultedWorkloads, ArmStyleSurvivesTwentyPercentFaults) {
  const auto* spec = workloads::FindWorkload("adpcm_enc");
  ASSERT_NE(spec, nullptr);
  const image::Image img = workloads::CompileWorkload(*spec);
  const auto input = workloads::MakeInput(spec->name, 1);

  vm::Machine native;
  native.LoadImage(img);
  native.SetInput(input);
  const vm::RunResult native_result = native.Run(4'000'000'000ull);
  ASSERT_EQ(native_result.reason, vm::StopReason::kHalted);

  softcache::SoftCacheConfig config;
  config.style = softcache::Style::kArm;
  config.tcache_bytes = 64 * 1024;
  config.fault.seed = 5;
  config.fault.drop = 0.2;
  config.fault.corrupt = 0.2;
  config.fault.duplicate = 0.2;
  softcache::SoftCacheSystem system(img, config);
  system.SetInput(input);
  const vm::RunResult cached = system.Run(8'000'000'000ull);
  ASSERT_EQ(cached.reason, vm::StopReason::kHalted) << cached.fault_message;
  EXPECT_EQ(cached.exit_code, native_result.exit_code);
  EXPECT_EQ(system.OutputString(), native.OutputString());
  EXPECT_GT(system.stats().net.retries, 0u);
  system.cc().CheckInvariants();
}

// ---------------------------------------------------------------------------
// Faulted D-cache: lossy link under data traffic, writebacks idempotent
// ---------------------------------------------------------------------------

TEST(FaultedDcache, DataEquivalentAndWritesNotAppliedTwice) {
  // Streams over an array much larger than the cache so evictions force a
  // steady stream of kDataWriteback traffic through the lossy link.
  const image::Image img = *minicc::CompileMiniC(R"(
    int a[2048];
    int main() {
      for (int pass = 0; pass < 3; pass++) {
        for (int i = 0; i < 2048; i++) a[i] = a[i] + i * pass;
      }
      int sum = 0;
      for (int i = 0; i < 2048; i++) sum += a[i];
      return sum % 251;
    }
  )");

  vm::Machine native;
  native.LoadImage(img);
  const vm::RunResult native_result = native.Run(2'000'000'000);
  ASSERT_EQ(native_result.reason, vm::StopReason::kHalted);

  vm::Machine machine;
  machine.LoadImage(img);
  MemoryController mc(img, softcache::Style::kSparc, 64);
  net::Channel channel;
  dcache::DCacheConfig config;
  config.dcache_blocks = 16;  // tiny: force eviction writebacks
  config.fault.seed = 9;
  config.fault.drop = 0.1;
  config.fault.corrupt = 0.1;
  config.fault.duplicate = 0.1;
  dcache::DataCache cache(machine, mc, channel, config);
  cache.Attach();
  const vm::RunResult cached = machine.Run(2'000'000'000);
  ASSERT_EQ(cached.reason, vm::StopReason::kHalted) << cached.fault_message;
  cache.FlushAll();
  EXPECT_EQ(cached.exit_code, native_result.exit_code);

  // Flushed server memory must match native memory over data + bss.
  const uint32_t lo = img.data_base;
  const uint32_t hi = img.heap_base();
  for (uint32_t addr = lo; addr < hi; ++addr) {
    ASSERT_EQ(mc.data()[addr - mc.DataBase()], *(native.mem_data() + addr))
        << "data divergence at 0x" << std::hex << addr;
  }
  EXPECT_GT(cache.stats().writebacks, 0u);
  EXPECT_GT(cache.stats().net.retries, 0u);
  // Duplicated/retransmitted writebacks were answered from the replay
  // cache, not applied twice.
  EXPECT_GT(mc.replays_suppressed(), 0u);
}

}  // namespace
}  // namespace sc
