// Tests for the CLI plumbing shared by scc/sasm/sdis/srun, and for the
// VM-level trap dispatch contract the tools' --softcache mode relies on.
#include <gtest/gtest.h>

#include "sasm/assembler.h"
#include "tools/tool_util.h"
#include "vm/machine.h"

namespace sc {
namespace {

tools::Args MakeArgs(std::initializer_list<const char*> argv) {
  std::vector<char*> ptrs = {const_cast<char*>("prog")};
  for (const char* arg : argv) ptrs.push_back(const_cast<char*>(arg));
  return tools::Args(static_cast<int>(ptrs.size()), ptrs.data());
}

TEST(ToolArgs, PositionalAndFlags) {
  const auto args = MakeArgs({"input.mc", "--o=out.img", "--stats", "second.mc"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.mc");
  EXPECT_EQ(args.positional()[1], "second.mc");
  EXPECT_TRUE(args.Has("stats"));
  EXPECT_FALSE(args.Has("profile"));
  EXPECT_EQ(args.Get("o"), "out.img");
  EXPECT_EQ(args.Get("missing", "fallback"), "fallback");
}

TEST(ToolArgs, IntegerValues) {
  const auto args = MakeArgs({"--tcache=8192", "--hex=0x40", "--empty"});
  EXPECT_EQ(args.GetInt("tcache", 0), 8192u);
  EXPECT_EQ(args.GetInt("hex", 0), 64u);
  EXPECT_EQ(args.GetInt("empty", 7), 7u);   // flag without value -> fallback
  EXPECT_EQ(args.GetInt("absent", 9), 9u);
}

TEST(ToolArgs, UnknownFlagDetection) {
  const auto args = MakeArgs({"--good=1", "--typo=2"});
  EXPECT_EQ(args.FirstUnknown({"good"}), "typo");
  EXPECT_EQ(args.FirstUnknown({"good", "typo"}), "");
}

TEST(ToolFiles, RoundTripThroughDisk) {
  const std::string path = ::testing::TempDir() + "/sc_tool_io_test.bin";
  const std::vector<uint8_t> payload = {0, 1, 2, 255, 128, 7};
  ASSERT_TRUE(tools::WriteFileBytes(path, payload));
  const auto read_back = tools::ReadFileBytes(path);
  ASSERT_TRUE(read_back.has_value());
  EXPECT_EQ(*read_back, payload);
  std::remove(path.c_str());
}

TEST(ToolFiles, MissingFileReportsCleanly) {
  EXPECT_FALSE(tools::ReadFile("/nonexistent/definitely/not/here").has_value());
}

// ---------------------------------------------------------------------------
// VM trap-dispatch contract (what a custom cache controller can rely on)
// ---------------------------------------------------------------------------

// A minimal handler that records its invocations and redirects control.
struct RecordingHandler : vm::TrapHandler {
  uint32_t miss_index = 0;
  uint32_t jalr_target = 0;
  uint32_t jalr_link_reg = 99;
  uint32_t resume_pc = 0;

  uint32_t OnTcMiss(vm::Machine& m, uint32_t stub_index) override {
    (void)m;
    miss_index = stub_index;
    return resume_pc;
  }
  uint32_t OnTcJalr(vm::Machine& m, const isa::Instr& instr, uint32_t pc) override {
    jalr_target = (m.reg(instr.rs1) + static_cast<uint32_t>(instr.imm)) & ~3u;
    jalr_link_reg = instr.rd;
    m.set_reg(instr.rd, pc + 4);
    return resume_pc;
  }
  uint32_t OnIcacheInvalidate(vm::Machine& m, uint32_t addr, uint32_t len,
                              uint32_t pc) override {
    (void)m;
    (void)addr;
    (void)len;
    return pc + 4;
  }
};

TEST(VmTrapContract, TcMissCarriesStubIndexAndRedirects) {
  auto img = sasm::Assemble(R"(
    _start:
      nop
    target:
      li a0, 55
      sys 0
  )");
  ASSERT_TRUE(img.ok());
  vm::Machine machine;
  machine.LoadImage(*img);
  // Overwrite the nop with TCMISS #1234 and let the handler redirect to
  // 'target'.
  machine.WriteWord(img->entry, isa::EncTcMiss(1234));
  RecordingHandler handler;
  handler.resume_pc = img->entry + 4;
  machine.set_trap_handler(&handler);
  const auto result = machine.Run(100);
  EXPECT_EQ(result.reason, vm::StopReason::kHalted);
  EXPECT_EQ(result.exit_code, 55);
  EXPECT_EQ(handler.miss_index, 1234u);
}

TEST(VmTrapContract, TcJalrExposesOperandsAndPc) {
  auto img = sasm::Assemble(R"(
    _start:
      li t3, 0x5000
      nop                 # replaced with TCJALR t2, t3, 8
    after:
      li a0, 9
      sys 0
  )");
  ASSERT_TRUE(img.ok());
  vm::Machine machine;
  machine.LoadImage(*img);
  const uint32_t tcjalr_pc = img->entry + 4;
  machine.WriteWord(tcjalr_pc, isa::Encode(isa::Instr{.op = isa::Opcode::kTcJalr,
                                                      .rd = isa::kT2,
                                                      .rs1 = isa::kT3,
                                                      .imm = 8}));
  RecordingHandler handler;
  handler.resume_pc = tcjalr_pc + 4;
  machine.set_trap_handler(&handler);
  const auto result = machine.Run(100);
  EXPECT_EQ(result.reason, vm::StopReason::kHalted);
  EXPECT_EQ(result.exit_code, 9);
  EXPECT_EQ(handler.jalr_target, 0x5008u);
  EXPECT_EQ(handler.jalr_link_reg, isa::kT2);
  // The handler wrote the link register with pc+4.
  EXPECT_EQ(machine.reg(isa::kT2), tcjalr_pc + 4);
}

TEST(VmTrapContract, HandlerFaultStopsTheRun) {
  struct FaultingHandler : RecordingHandler {
    uint32_t OnTcMiss(vm::Machine& m, uint32_t) override {
      m.RaiseFault("handler says no");
      return 0;
    }
  };
  auto img = sasm::Assemble("_start: nop\n halt\n");
  ASSERT_TRUE(img.ok());
  vm::Machine machine;
  machine.LoadImage(*img);
  machine.WriteWord(img->entry, isa::EncTcMiss(0));
  FaultingHandler handler;
  machine.set_trap_handler(&handler);
  const auto result = machine.Run(100);
  EXPECT_EQ(result.reason, vm::StopReason::kFault);
  EXPECT_NE(result.fault_message.find("handler says no"), std::string::npos);
}

}  // namespace
}  // namespace sc
