// Image container tests: serialization round trips, symbol lookup, bounds.
#include <gtest/gtest.h>

#include "image/image.h"
#include "image/layout.h"

namespace sc::image {
namespace {

Image MakeSample() {
  Image img;
  img.entry = kTextBase + 8;
  img.text_base = kTextBase;
  img.text = {1, 0, 0, 0, 2, 0, 0, 0, 3, 0, 0, 0};
  img.data_base = kDataBase;
  img.data = {9, 8, 7};
  img.bss_base = kDataBase + 4;
  img.bss_size = 128;
  img.symbols.push_back(Symbol{"f", kTextBase, 8, SymbolKind::kFunction});
  img.symbols.push_back(Symbol{"g", kTextBase + 8, 4, SymbolKind::kFunction});
  img.symbols.push_back(Symbol{"obj", kDataBase, 3, SymbolKind::kObject});
  return img;
}

TEST(Image, SerializeRoundTrip) {
  const Image img = MakeSample();
  const auto bytes = img.Serialize();
  auto parsed = Image::Deserialize(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.error().ToString();
  EXPECT_EQ(parsed->entry, img.entry);
  EXPECT_EQ(parsed->text, img.text);
  EXPECT_EQ(parsed->data, img.data);
  EXPECT_EQ(parsed->bss_size, img.bss_size);
  ASSERT_EQ(parsed->symbols.size(), 3u);
  EXPECT_EQ(parsed->symbols[0].name, "f");
  EXPECT_EQ(parsed->symbols[2].kind, SymbolKind::kObject);
}

TEST(Image, DeserializeRejectsCorruption) {
  const Image img = MakeSample();
  auto bytes = img.Serialize();
  // Bad magic.
  auto bad_magic = bytes;
  bad_magic[0] ^= 0xff;
  EXPECT_FALSE(Image::Deserialize(bad_magic).ok());
  // Truncation at every prefix must fail cleanly, never crash.
  for (size_t len = 0; len < bytes.size(); len += 7) {
    std::vector<uint8_t> prefix(bytes.begin(), bytes.begin() + static_cast<long>(len));
    EXPECT_FALSE(Image::Deserialize(prefix).ok()) << "len " << len;
  }
  // Trailing junk.
  auto extra = bytes;
  extra.push_back(0);
  EXPECT_FALSE(Image::Deserialize(extra).ok());
}

TEST(Image, SymbolLookup) {
  const Image img = MakeSample();
  EXPECT_NE(img.FindSymbol("f"), nullptr);
  EXPECT_EQ(img.FindSymbol("missing"), nullptr);
  EXPECT_EQ(img.FunctionAt(kTextBase + 4)->name, "f");
  EXPECT_EQ(img.FunctionAt(kTextBase + 8)->name, "g");
  EXPECT_EQ(img.FunctionAt(kTextBase + 100), nullptr);
  // Object symbols are not functions.
  EXPECT_EQ(img.FunctionAt(kDataBase), nullptr);
}

TEST(Image, FunctionsSortedByAddress) {
  Image img = MakeSample();
  std::swap(img.symbols[0], img.symbols[1]);
  const auto funcs = img.Functions();
  ASSERT_EQ(funcs.size(), 2u);
  EXPECT_LT(funcs[0]->addr, funcs[1]->addr);
}

TEST(Image, TextBounds) {
  const Image img = MakeSample();
  EXPECT_TRUE(img.ContainsText(kTextBase));
  EXPECT_TRUE(img.ContainsText(kTextBase + 8));
  EXPECT_FALSE(img.ContainsText(kTextBase + 12));
  EXPECT_FALSE(img.ContainsText(kTextBase - 4));
  EXPECT_EQ(img.TextWord(kTextBase + 4), 2u);
}

TEST(Image, HeapStartsPastStaticStorage) {
  const Image img = MakeSample();
  EXPECT_GE(img.heap_base(), img.bss_end());
  EXPECT_EQ(img.heap_base() % 16, 0u);
}

}  // namespace
}  // namespace sc::image
