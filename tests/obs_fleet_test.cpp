// Fleet-scale observability: the TraceMux lane model under real load.
//
// Covers the per-lane export contract (a wrapped lane's orphan E events are
// skipped against ITS OWN span stack, never a neighbor's), cross-lane flow
// events (s/t/f sharing an id, arrow head bound to the enclosing slice), the
// merged trace of a 64-client `host_threads` run under the threaded engine
// (every client lane present, every flow endpoint inside a real span, all
// JSON documents parseable), the fleet-wide inspection safepoint, and the
// load-bearing invariant: observability fully on — lanes, metrics, periodic
// inspection — changes NOTHING guest-visible under either scheduler or
// engine.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "minicc/compiler.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_mux.h"
#include "softcache/inspector.h"
#include "softcache/system.h"
#include "tools/json_min.h"
#include "vm/superblock.h"
#include "workloads/workloads.h"

namespace sc {
namespace {

using tools::JsonParser;
using tools::JsonValue;

image::Image LoopImage() {
  auto img = minicc::CompileMiniC(R"(
    int a[256];
    int main() {
      int sum = 0;
      for (int i = 0; i < 256; i = i + 1) { a[i] = i * 3; }
      for (int i = 0; i < 256; i = i + 1) { sum = sum + a[i]; }
      return sum % 251;
    }
  )");
  SC_CHECK(img.ok());
  return std::move(*img);
}

JsonValue MustParse(const std::string& text) {
  JsonValue value;
  std::string error;
  const bool ok = JsonParser::Parse(text, &value, &error);
  EXPECT_TRUE(ok) << error;
  return value;
}

// Walks every span event per (pid, tid) lane and checks B/E balance: depth
// never goes negative (no orphan E leaked into the export) and ends at zero
// (every B closed). Returns the number of lanes that carried spans.
size_t CheckPerLaneBalance(const JsonValue& trace) {
  std::map<std::pair<uint64_t, uint64_t>, int64_t> depth;
  for (const JsonValue& e : trace["traceEvents"].array) {
    const std::string& ph = e["ph"].AsString();
    if (ph != "B" && ph != "E") continue;
    const auto lane = std::make_pair(e["pid"].AsU64(), e["tid"].AsU64());
    depth[lane] += ph == "B" ? 1 : -1;
    EXPECT_GE(depth[lane], 0) << "orphan E in lane pid=" << lane.first
                              << " tid=" << lane.second;
  }
  for (const auto& [lane, d] : depth) {
    EXPECT_EQ(d, 0) << "unclosed span in lane pid=" << lane.first
                    << " tid=" << lane.second;
  }
  return depth.size();
}

// --- Per-lane re-balancing ------------------------------------------------

TEST(TraceMux, WrappedLaneDoesNotUnbalanceNeighbors) {
  obs::TraceMux mux;
  obs::Tracer* wrapped = mux.AddLane("wrapped", "main", 1, 0);
  obs::Tracer* clean = mux.AddLane("clean", "main", 2, 0);
  wrapped->Enable(4);  // tiny ring: guaranteed to wrap below
  clean->Enable(64);

  // Sequential spans overflow the small ring so its surviving tail begins
  // with orphan E events; the clean lane holds one properly nested span.
  for (int i = 0; i < 8; ++i) {
    wrapped->Begin("t", "span");
    wrapped->End("t", "span");
  }
  EXPECT_GT(wrapped->dropped_events(), 0u);
  clean->Begin("t", "outer");
  clean->Instant("t", "tick");
  clean->End("t", "outer");

  std::ostringstream out;
  mux.ExportChromeJson(out);
  const JsonValue trace = MustParse(out.str());
  EXPECT_EQ(CheckPerLaneBalance(trace), 2u);

  // The clean lane came through untouched: exactly one B/E pair plus the
  // instant, none of them eaten by the wrapped neighbor's orphan handling.
  size_t clean_b = 0, clean_e = 0, clean_i = 0;
  for (const JsonValue& e : trace["traceEvents"].array) {
    if (e["pid"].AsU64() != 2) continue;
    const std::string& ph = e["ph"].AsString();
    if (ph == "B") ++clean_b;
    if (ph == "E") ++clean_e;
    if (ph == "i") ++clean_i;
  }
  EXPECT_EQ(clean_b, 1u);
  EXPECT_EQ(clean_e, 1u);
  EXPECT_EQ(clean_i, 1u);
  EXPECT_EQ(mux.TotalDropped(), wrapped->dropped_events());
}

TEST(TraceMux, FlowEventsCarryIdsAcrossLanes) {
  obs::TraceMux mux;
  obs::Tracer* client = mux.AddLane("client", "vm", 1, 0);
  obs::Tracer* server = mux.AddLane("server", "shard", 0, 1);
  mux.EnableAll(64);

  client->Begin("cc", "fetch");
  client->FlowStart("cc", "miss", 0x107);
  client->End("cc", "fetch");
  server->Begin("mc", "handle");
  server->FlowStep("mc", "miss", 0x107);
  server->End("mc", "handle");
  client->Begin("cc", "install");
  client->FlowEnd("cc", "miss", 0x107);
  client->End("cc", "install");

  std::ostringstream out;
  mux.ExportChromeJson(out);
  const std::string json = out.str();
  const JsonValue trace = MustParse(json);
  CheckPerLaneBalance(trace);

  size_t starts = 0, steps = 0, ends = 0;
  for (const JsonValue& e : trace["traceEvents"].array) {
    const std::string& ph = e["ph"].AsString();
    if (ph != "s" && ph != "t" && ph != "f") continue;
    EXPECT_EQ(e["id"].AsU64(), 0x107u);
    if (ph == "s") ++starts;
    if (ph == "t") ++steps;
    if (ph == "f") ++ends;
  }
  EXPECT_EQ(starts, 1u);
  EXPECT_EQ(steps, 1u);
  EXPECT_EQ(ends, 1u);
  // The arrow head binds to its enclosing slice, not the following one.
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
}

TEST(TraceMux, WrapUnderLoadKeepsEveryLaneBalanced) {
  // Regression for the per-lane orphan-E rule under real load: a whole
  // fleet traced into rings small enough that client lanes wrap mid-span.
  const image::Image img = LoopImage();
  softcache::MultiClientConfig config;
  config.clients = 8;
  config.base.tcache_bytes = 4 * 1024;  // small tcache: extra miss traffic
  softcache::MultiClientSystem fleet(img, config);
  obs::TraceMux mux;
  fleet.AttachTraceMux(&mux);
  mux.EnableAll(64);  // tiny rings: wrap is the point

  const auto results = fleet.RunAll();
  for (const auto& r : results) EXPECT_EQ(r.reason, vm::StopReason::kHalted);
  EXPECT_GT(mux.TotalDropped(), 0u);

  std::ostringstream out;
  mux.ExportChromeJson(out);
  const JsonValue trace = MustParse(out.str());
  EXPECT_GE(CheckPerLaneBalance(trace), 8u);
}

// --- The 64-client threaded merged trace ----------------------------------

TEST(FleetObservability, MergedTraceUnder64ThreadedClients) {
  const image::Image img = LoopImage();
  softcache::MultiClientConfig config;
  config.clients = 64;
  config.base.tcache_bytes = 8 * 1024;
  config.host_threads = 4;
  softcache::MultiClientSystem fleet(img, config);
  for (size_t i = 0; i < fleet.clients(); ++i) {
    fleet.machine(i).set_engine(vm::Engine::kThreaded);
  }

  obs::TraceMux mux;
  fleet.AttachTraceMux(&mux);
  mux.EnableAll();
  obs::MetricsRegistry registry;
  fleet.RegisterMetrics(&registry);
  mux.RegisterMetrics(&registry);

  // Periodic inspection exercises the threaded safepoint: all workers park
  // at quantum boundaries, the hook reads cross-client state, everyone
  // resumes. The hook must see monotone fleet-min cycle counts.
  uint64_t inspections = 0;
  uint64_t last_floor = 0;
  softcache::Inspector inspector(&fleet);
  fleet.set_inspection_hook(1000, [&](uint64_t fleet_min) {
    ++inspections;
    EXPECT_GE(fleet_min, last_floor);
    last_floor = fleet_min;
    std::ostringstream snap;
    inspector.WriteJson(snap, "periodic");
    const JsonValue parsed = MustParse(snap.str());
    EXPECT_EQ(parsed["clients"].array.size(), 64u);
  });

  const auto results = fleet.RunAll();
  ASSERT_EQ(results.size(), 64u);
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].reason, vm::StopReason::kHalted) << "client " << i;
  }
  EXPECT_GT(inspections, 0u);
  EXPECT_EQ(mux.TotalDropped(), 0u);

  std::ostringstream out;
  mux.ExportChromeJson(out);
  const JsonValue trace = MustParse(out.str());

  // Every client lane (pids 1..64) plus the server loop/shard lanes carried
  // spans, and each lane's stream is balanced.
  EXPECT_GE(CheckPerLaneBalance(trace), 65u);
  std::set<uint64_t> span_pids;
  for (const JsonValue& e : trace["traceEvents"].array) {
    if (e["ph"].AsString() == "B") span_pids.insert(e["pid"].AsU64());
  }
  for (uint64_t pid = 0; pid <= 64; ++pid) {
    EXPECT_TRUE(span_pids.count(pid)) << "no spans in lane pid " << pid;
  }

  // Flow endpoints resolve: every flow id has a start and an end, and every
  // flow event sits inside a real span of its own lane.
  std::map<std::pair<uint64_t, uint64_t>,
           std::vector<std::pair<uint64_t, uint64_t>>>
      spans;  // lane -> [begin_ts, end_ts]
  {
    std::map<std::pair<uint64_t, uint64_t>, std::vector<uint64_t>> open;
    for (const JsonValue& e : trace["traceEvents"].array) {
      const std::string& ph = e["ph"].AsString();
      const auto lane = std::make_pair(e["pid"].AsU64(), e["tid"].AsU64());
      if (ph == "B") open[lane].push_back(e["ts"].AsU64());
      if (ph == "E") {
        ASSERT_FALSE(open[lane].empty());
        spans[lane].emplace_back(open[lane].back(), e["ts"].AsU64());
        open[lane].pop_back();
      }
    }
  }
  std::map<uint64_t, int> flow_starts, flow_ends;
  size_t flow_events = 0;
  for (const JsonValue& e : trace["traceEvents"].array) {
    const std::string& ph = e["ph"].AsString();
    if (ph != "s" && ph != "t" && ph != "f") continue;
    ++flow_events;
    if (ph == "s") ++flow_starts[e["id"].AsU64()];
    if (ph == "f") ++flow_ends[e["id"].AsU64()];
    const auto lane = std::make_pair(e["pid"].AsU64(), e["tid"].AsU64());
    const uint64_t ts = e["ts"].AsU64();
    bool inside = false;
    for (const auto& [b, end] : spans[lane]) {
      if (ts >= b && ts <= end) {
        inside = true;
        break;
      }
    }
    EXPECT_TRUE(inside) << ph << " event at ts " << ts << " outside any span"
                        << " in lane pid=" << lane.first
                        << " tid=" << lane.second;
  }
  EXPECT_GT(flow_events, 0u);
  for (const auto& [id, n] : flow_starts) {
    EXPECT_EQ(flow_ends.count(id), 1u) << "flow id " << id << " never ended";
    EXPECT_EQ(flow_ends[id], n) << "flow id " << id << " start/end mismatch";
  }
  for (const auto& [id, n] : flow_ends) {
    EXPECT_EQ(flow_starts.count(id), 1u)
        << "flow id " << id << " ended without a start";
  }

  // The metrics document (with the per-lane dropped counters mixed in) and
  // a post-run inspector snapshot both parse.
  MustParse(registry.ToJson());
  std::ostringstream snap;
  inspector.WriteJson(snap, "final");
  const JsonValue parsed = MustParse(snap.str());
  EXPECT_EQ(parsed["clients"].array.size(), 64u);
  EXPECT_TRUE(parsed["server"].is_object());
}

// --- Observability on == observability off, bit for bit -------------------

struct FleetOutcome {
  std::vector<uint64_t> cycles;
  std::vector<uint64_t> instructions;
  std::vector<std::string> outputs;
  obs::MetricsRegistry::Snapshot metrics;
};

FleetOutcome RunFleetWorkload(vm::Engine engine, uint32_t host_threads,
                              bool with_obs) {
  const image::Image img = LoopImage();
  softcache::MultiClientConfig config;
  config.clients = 8;
  config.base.tcache_bytes = 8 * 1024;
  config.host_threads = host_threads;
  softcache::MultiClientSystem fleet(img, config);
  for (size_t i = 0; i < fleet.clients(); ++i) {
    fleet.machine(i).set_engine(engine);
  }
  obs::TraceMux mux;
  softcache::Inspector inspector(&fleet);
  uint64_t inspections = 0;
  if (with_obs) {
    fleet.AttachTraceMux(&mux);
    mux.EnableAll(1 << 12);  // small rings: wrapping must not matter either
    fleet.set_inspection_hook(1000, [&](uint64_t) {
      ++inspections;
      std::ostringstream snap;
      inspector.WriteJson(snap, "periodic");
    });
  }
  // Only the fleet's own metrics join the snapshot (no mux counters): both
  // runs must expose the same key set for the equality below to be exact.
  obs::MetricsRegistry registry;
  fleet.RegisterMetrics(&registry);
  const auto results = fleet.RunAll();
  FleetOutcome outcome;
  for (size_t i = 0; i < results.size(); ++i) {
    SC_CHECK(results[i].reason == vm::StopReason::kHalted);
    outcome.cycles.push_back(results[i].cycles);
    outcome.instructions.push_back(results[i].instructions);
    outcome.outputs.push_back(fleet.OutputString(i));
  }
  if (with_obs) {
    SC_CHECK(inspections > 0);
  }
  outcome.metrics = registry.TakeSnapshot();
  return outcome;
}

TEST(FleetObservability, FullObservabilityDoesNotPerturbEitherEngine) {
  for (vm::Engine engine : {vm::Engine::kInterp, vm::Engine::kThreaded}) {
    // Round-robin scheduler: everything is deterministic, so the entire
    // metrics snapshot — every counter and gauge — must match bit for bit.
    const FleetOutcome off = RunFleetWorkload(engine, 0, false);
    const FleetOutcome on = RunFleetWorkload(engine, 0, true);
    EXPECT_EQ(off.cycles, on.cycles);
    EXPECT_EQ(off.instructions, on.instructions);
    EXPECT_EQ(off.outputs, on.outputs);
    EXPECT_TRUE(off.metrics == on.metrics)
        << "metrics diverged with observability on (round-robin)";

    // Threaded scheduler: host interleaving is nondeterministic, so compare
    // the guest-visible results (which the scheduler guarantees are
    // solo-identical) rather than interleaving-dependent aggregates.
    const FleetOutcome t_off = RunFleetWorkload(engine, 4, false);
    const FleetOutcome t_on = RunFleetWorkload(engine, 4, true);
    EXPECT_EQ(t_off.cycles, t_on.cycles);
    EXPECT_EQ(t_off.instructions, t_on.instructions);
    EXPECT_EQ(t_off.outputs, t_on.outputs);
    EXPECT_EQ(off.cycles, t_on.cycles)
        << "threaded scheduling changed guest cycles";
  }
}

}  // namespace
}  // namespace sc
