// Differential tests for the superblock threaded-code engine: the threaded
// engine must be *bit-identical* to the interpreter — output bytes, exit
// code, instruction count, cycle count, fault messages — on every workload,
// on random programs, under the softcache, under eviction churn, under
// instruction-budget slicing, and in the presence of self-modifying code.
// This file is the permanent form of the engine's correctness proof.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include <cstring>

#include "isa/isa.h"
#include "minicc/compiler.h"
#include "sasm/assembler.h"
#include "softcache/system.h"
#include "tests/program_gen.h"
#include "vm/machine.h"
#include "workloads/workloads.h"

namespace sc {
namespace {

using vm::Engine;

struct EngineRun {
  vm::RunResult result;
  std::string output;
};

void ExpectBitIdentical(const EngineRun& interp, const EngineRun& threaded,
                        const std::string& what) {
  EXPECT_EQ(static_cast<int>(interp.result.reason),
            static_cast<int>(threaded.result.reason))
      << what;
  EXPECT_EQ(interp.result.exit_code, threaded.result.exit_code) << what;
  EXPECT_EQ(interp.result.instructions, threaded.result.instructions) << what;
  EXPECT_EQ(interp.result.cycles, threaded.result.cycles) << what;
  EXPECT_EQ(interp.result.fault_message, threaded.result.fault_message)
      << what;
  EXPECT_EQ(interp.output, threaded.output) << what;
}

EngineRun RunNative(const image::Image& img, const std::vector<uint8_t>& input,
                    Engine engine, uint64_t max_instructions = UINT64_MAX) {
  vm::Machine machine;
  machine.set_engine(engine);
  machine.LoadImage(img);
  machine.SetInput(input);
  EngineRun run;
  run.result = machine.Run(max_instructions);
  run.output = machine.OutputString();
  return run;
}

EngineRun RunSoftcache(const image::Image& img,
                       const std::vector<uint8_t>& input, Engine engine,
                       const softcache::SoftCacheConfig& config) {
  softcache::SoftCacheSystem system(img, config);
  system.machine().set_engine(engine);
  system.SetInput(input);
  EngineRun run;
  run.result = system.Run(16'000'000'000ull);
  run.output = system.OutputString();
  if (run.result.reason == vm::StopReason::kHalted) {
    system.cc().CheckInvariants();
  }
  return run;
}

// ---------------------------------------------------------------------------
// Workloads, native and under the softcache
// ---------------------------------------------------------------------------

const std::vector<std::string>& WorkloadNames() {
  static const std::vector<std::string> kNames = {
      "adpcm_enc", "compress95", "gzip", "cjpeg", "hextobdd", "sha256"};
  return kNames;
}

TEST(EngineDifferential, WorkloadsNative) {
  for (const std::string& name : WorkloadNames()) {
    const auto* spec = workloads::FindWorkload(name);
    ASSERT_NE(spec, nullptr) << name;
    const image::Image img = workloads::CompileWorkload(*spec);
    const auto input = workloads::MakeInput(name, 1);
    const EngineRun interp = RunNative(img, input, Engine::kInterp);
    const EngineRun threaded = RunNative(img, input, Engine::kThreaded);
    ASSERT_EQ(interp.result.reason, vm::StopReason::kHalted)
        << name << ": " << interp.result.fault_message;
    ExpectBitIdentical(interp, threaded, name);
  }
}

TEST(EngineDifferential, WorkloadsSoftcacheSparc) {
  softcache::SoftCacheConfig config;
  config.style = softcache::Style::kSparc;
  config.tcache_bytes = 16 * 1024;
  for (const std::string& name : WorkloadNames()) {
    const auto* spec = workloads::FindWorkload(name);
    ASSERT_NE(spec, nullptr) << name;
    const image::Image img = workloads::CompileWorkload(*spec);
    const auto input = workloads::MakeInput(name, 1);
    const EngineRun interp = RunSoftcache(img, input, Engine::kInterp, config);
    const EngineRun threaded =
        RunSoftcache(img, input, Engine::kThreaded, config);
    ASSERT_EQ(interp.result.reason, vm::StopReason::kHalted)
        << name << ": " << interp.result.fault_message;
    ExpectBitIdentical(interp, threaded, name);
  }
}

TEST(EngineDifferential, WorkloadsSoftcacheArm) {
  softcache::SoftCacheConfig config;
  config.style = softcache::Style::kArm;
  config.tcache_bytes = 32 * 1024;
  for (const std::string& name : {std::string("sha256"), std::string("gzip")}) {
    const auto* spec = workloads::FindWorkload(name);
    ASSERT_NE(spec, nullptr) << name;
    const image::Image img = workloads::CompileWorkload(*spec);
    const auto input = workloads::MakeInput(name, 1);
    const EngineRun interp = RunSoftcache(img, input, Engine::kInterp, config);
    const EngineRun threaded =
        RunSoftcache(img, input, Engine::kThreaded, config);
    ASSERT_EQ(interp.result.reason, vm::StopReason::kHalted)
        << name << ": " << interp.result.fault_message;
    ExpectBitIdentical(interp, threaded, name);
  }
}

// Eviction churn: a tiny tcache forces constant install/patch/evict traffic,
// i.e. constant WriteWord/WriteBlock invalidation of live superblocks.
TEST(EngineDifferential, EvictionChurnTinyTcache) {
  const auto* spec = workloads::FindWorkload("dijkstra");
  ASSERT_NE(spec, nullptr);
  const image::Image img = workloads::CompileWorkload(*spec);
  const auto input = workloads::MakeInput("dijkstra", 1);
  for (const uint32_t tcache : {1024u, 2048u}) {
    softcache::SoftCacheConfig config;
    config.tcache_bytes = tcache;
    const EngineRun interp = RunSoftcache(img, input, Engine::kInterp, config);
    const EngineRun threaded =
        RunSoftcache(img, input, Engine::kThreaded, config);
    ASSERT_EQ(interp.result.reason, vm::StopReason::kHalted)
        << interp.result.fault_message;
    ExpectBitIdentical(interp, threaded, "tcache=" + std::to_string(tcache));
  }
}

// Recovery: a crash-prone MC restarts mid-run and the CC replays its journal.
// The threaded engine must ride through identically (crash points are cycle-
// and request-count-driven, both of which it reproduces exactly).
TEST(EngineDifferential, RecoveryCrashSchedule) {
  const auto* spec = workloads::FindWorkload("dijkstra");
  ASSERT_NE(spec, nullptr);
  const image::Image img = workloads::CompileWorkload(*spec);
  const auto input = workloads::MakeInput("dijkstra", 1);
  softcache::SoftCacheConfig config;
  config.tcache_bytes = 4096;
  config.fault.seed = 7;
  config.fault.crash_period = 5;
  const EngineRun interp = RunSoftcache(img, input, Engine::kInterp, config);
  const EngineRun threaded = RunSoftcache(img, input, Engine::kThreaded, config);
  ASSERT_EQ(interp.result.reason, vm::StopReason::kHalted)
      << interp.result.fault_message;
  ExpectBitIdentical(interp, threaded, "crash_period=5");
}

// Multi-client: every client VM on the threaded engine, sharing one MC.
// Each client must be bit-identical to a solo interpreter run under the same
// softcache configuration (the fleet guarantee, now engine-independent).
TEST(EngineDifferential, MultiClientThreaded) {
  const auto* spec = workloads::FindWorkload("dijkstra");
  ASSERT_NE(spec, nullptr);
  const image::Image img = workloads::CompileWorkload(*spec);
  const auto input = workloads::MakeInput("dijkstra", 1);

  softcache::MultiClientConfig mcfg;
  mcfg.clients = 4;
  mcfg.base.tcache_bytes = 8 * 1024;
  const EngineRun solo = RunSoftcache(img, input, Engine::kInterp, mcfg.base);
  softcache::MultiClientSystem fleet(img, mcfg);
  for (uint32_t i = 0; i < mcfg.clients; ++i) {
    fleet.machine(i).set_engine(Engine::kThreaded);
    fleet.SetInput(i, input);
  }
  const std::vector<vm::RunResult> results = fleet.RunAll();
  for (uint32_t i = 0; i < mcfg.clients; ++i) {
    ASSERT_EQ(results[i].reason, vm::StopReason::kHalted)
        << "client " << i << ": " << results[i].fault_message;
    EXPECT_EQ(results[i].exit_code, solo.result.exit_code) << i;
    EXPECT_EQ(results[i].instructions, solo.result.instructions) << i;
    EXPECT_EQ(fleet.OutputString(i), solo.output) << i;
  }
}

// ---------------------------------------------------------------------------
// Random programs (property_test-style)
// ---------------------------------------------------------------------------

class EngineRandomProgramTest : public ::testing::TestWithParam<int> {};

TEST_P(EngineRandomProgramTest, NativeAndSoftcacheBitIdentical) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  ProgramGen gen(seed ^ 0xe7617e);
  const std::string source = gen.Generate(/*arm_safe=*/false);
  auto img = minicc::CompileMiniC(source, "gen.mc");
  ASSERT_TRUE(img.ok()) << img.error().ToString() << "\n" << source;
  const std::vector<uint8_t> no_input;

  const EngineRun interp = RunNative(*img, no_input, Engine::kInterp);
  const EngineRun threaded = RunNative(*img, no_input, Engine::kThreaded);
  ASSERT_EQ(interp.result.reason, vm::StopReason::kHalted)
      << interp.result.fault_message << " seed=" << seed;
  ExpectBitIdentical(interp, threaded, "native seed=" + std::to_string(seed));

  softcache::SoftCacheConfig config;
  config.tcache_bytes = 2048;
  const EngineRun sc_interp =
      RunSoftcache(*img, no_input, Engine::kInterp, config);
  const EngineRun sc_threaded =
      RunSoftcache(*img, no_input, Engine::kThreaded, config);
  ExpectBitIdentical(sc_interp, sc_threaded,
                     "softcache seed=" + std::to_string(seed));
}

// The instruction budget must bite at exactly the same instruction, even
// mid-superblock: run the threaded engine in odd-sized slices and require
// the same final state as the interpreter's one-shot run.
TEST_P(EngineRandomProgramTest, SlicedBudgetMatchesOneShot) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  ProgramGen gen(seed ^ 0x51ce);
  const std::string source = gen.Generate();
  auto img = minicc::CompileMiniC(source, "gen.mc");
  ASSERT_TRUE(img.ok()) << img.error().ToString();
  const std::vector<uint8_t> no_input;
  const EngineRun interp = RunNative(*img, no_input, Engine::kInterp);
  ASSERT_EQ(interp.result.reason, vm::StopReason::kHalted);

  vm::Machine machine;
  machine.set_engine(Engine::kThreaded);
  machine.LoadImage(*img);
  vm::RunResult result;
  uint64_t slices = 0;
  for (;;) {
    result = machine.Run(777);
    ++slices;
    if (result.reason != vm::StopReason::kInstrLimit) break;
    ASSERT_LT(machine.instructions(), 400'000'000u) << "seed=" << seed;
  }
  ASSERT_EQ(result.reason, vm::StopReason::kHalted) << result.fault_message;
  EXPECT_GT(slices, 1u);
  EXPECT_EQ(result.exit_code, interp.result.exit_code);
  EXPECT_EQ(result.instructions, interp.result.instructions);
  EXPECT_EQ(result.cycles, interp.result.cycles);
  EXPECT_EQ(machine.OutputString(), interp.output);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineRandomProgramTest,
                         ::testing::Range(1, 11));

// ---------------------------------------------------------------------------
// Engine mechanics: formation, chaining, switching
// ---------------------------------------------------------------------------

TEST(EngineMechanics, FillsAndChainsAreCounted) {
  const auto* spec = workloads::FindWorkload("sha256");
  ASSERT_NE(spec, nullptr);
  const image::Image img = workloads::CompileWorkload(*spec);
  vm::Machine machine;
  machine.set_engine(Engine::kThreaded);
  machine.LoadImage(img);
  machine.SetInput(workloads::MakeInput("sha256", 1));
  const vm::RunResult result = machine.Run();
  ASSERT_EQ(result.reason, vm::StopReason::kHalted) << result.fault_message;
  const vm::SbStats& sb = machine.sb_stats();
  EXPECT_GT(sb.fills, 0u);
  EXPECT_GT(sb.fill_ops, sb.fills);  // blocks average > 1 op
  EXPECT_GT(sb.chains, 0u);          // hot blocks got linked
  // Chaining means dispatch-loop entries are far rarer than retired blocks:
  // the whole point of the engine. Fills bound the number of distinct
  // blocks; the workload retires millions of instructions.
  EXPECT_LT(sb.fills, result.instructions / 100);
}

TEST(EngineMechanics, SwitchingEnginesMidRunIsSeamless) {
  const auto* spec = workloads::FindWorkload("dijkstra");
  ASSERT_NE(spec, nullptr);
  const image::Image img = workloads::CompileWorkload(*spec);
  const auto input = workloads::MakeInput("dijkstra", 1);
  const EngineRun interp = RunNative(img, input, Engine::kInterp);
  ASSERT_EQ(interp.result.reason, vm::StopReason::kHalted);

  vm::Machine machine;
  machine.LoadImage(img);
  machine.SetInput(input);
  Engine engine = Engine::kThreaded;
  vm::RunResult result;
  for (;;) {
    machine.set_engine(engine);
    engine = engine == Engine::kThreaded ? Engine::kInterp : Engine::kThreaded;
    result = machine.Run(10'000);
    if (result.reason != vm::StopReason::kInstrLimit) break;
    ASSERT_LT(machine.instructions(), 400'000'000u);
  }
  ASSERT_EQ(result.reason, vm::StopReason::kHalted) << result.fault_message;
  EXPECT_EQ(result.exit_code, interp.result.exit_code);
  EXPECT_EQ(result.instructions, interp.result.instructions);
  EXPECT_EQ(result.cycles, interp.result.cycles);
  EXPECT_EQ(machine.OutputString(), interp.output);
}

TEST(EngineMechanics, FaultMessagesIdentical) {
  // A program that runs off the end of its text into unmapped space, and one
  // that divides by zero: the threaded engine must produce the interpreter's
  // exact fault strings (pc included).
  const char* kFaults[] = {
      "_start:\n  li t0, 1\n  li t1, 0\n  div t2, t0, t1\n  sys 0\n",
      "_start:\n  li t0, 0x7f000000\n  jalr zero, t0, 0\n",
      "_start:\n  li t0, 6\n  jalr zero, t0, 2\n",
  };
  for (const char* src : kFaults) {
    auto img = sasm::Assemble(src);
    ASSERT_TRUE(img.ok()) << img.error().ToString();
    const EngineRun interp = RunNative(*img, {}, Engine::kInterp, 1'000'000);
    const EngineRun threaded =
        RunNative(*img, {}, Engine::kThreaded, 1'000'000);
    EXPECT_EQ(interp.result.reason, vm::StopReason::kFault);
    ExpectBitIdentical(interp, threaded, src);
  }
}

// ---------------------------------------------------------------------------
// Self-modifying code
// ---------------------------------------------------------------------------

// A guest store patches an instruction *later in the same straight-line run*
// (same superblock as the store). The threaded engine pre-decoded the old
// word; the store must interrupt the block so the patched word executes.
TEST(EngineSmc, StorePatchesUpcomingInstructionInSameBlock) {
  // target: starts as "addi a0, zero, 1"; the store rewrites it to
  // "addi a0, zero, 42" two instructions before execution reaches it.
  const char* kSource = R"(
    _start:
      la t0, target
      la t1, patch
      lw t2, 0(t1)
      sw t2, 0(t0)
    target:
      addi a0, zero, 1
      sys 0
    patch:
      addi a0, zero, 42
  )";
  auto img = sasm::Assemble(kSource);
  ASSERT_TRUE(img.ok()) << img.error().ToString();
  const EngineRun interp = RunNative(*img, {}, Engine::kInterp, 1'000);
  const EngineRun threaded = RunNative(*img, {}, Engine::kThreaded, 1'000);
  ASSERT_EQ(interp.result.reason, vm::StopReason::kHalted)
      << interp.result.fault_message;
  EXPECT_EQ(interp.result.exit_code, 42);
  ExpectBitIdentical(interp, threaded, "same-block patch");
}

// The patched instruction sits in a *different*, already-translated and
// already-chained superblock: the store must sever the chain, not just the
// current block. The loop executes the target block once (translating and
// chaining it), patches it, and runs it again.
TEST(EngineSmc, StorePatchesPreviouslyExecutedBlock) {
  const char* kSource = R"(
    _start:
      li s0, 0          # pass counter
      li s1, 0          # accumulator
    loop:
      j body
    body:
      addi t3, zero, 1  # patched to 2 between passes
      add s1, s1, t3
      addi s0, s0, 1
      li t4, 2
      blt s0, t4, patch_it
      mv a0, s1         # pass1: 1, pass2: 2 -> 3
      sys 0
    patch_it:
      la t0, body
      la t1, patch
      lw t2, 0(t1)
      sw t2, 0(t0)
      j loop
    patch:
      addi t3, zero, 2
  )";
  auto img = sasm::Assemble(kSource);
  ASSERT_TRUE(img.ok()) << img.error().ToString();
  const EngineRun interp = RunNative(*img, {}, Engine::kInterp, 10'000);
  const EngineRun threaded = RunNative(*img, {}, Engine::kThreaded, 10'000);
  ASSERT_EQ(interp.result.reason, vm::StopReason::kHalted)
      << interp.result.fault_message;
  EXPECT_EQ(interp.result.exit_code, 3);
  ExpectBitIdentical(interp, threaded, "cross-block patch");
  // The threaded run really did retranslate: at least one invalidation.
  vm::Machine machine;
  machine.set_engine(Engine::kThreaded);
  machine.LoadImage(*img);
  ASSERT_EQ(machine.Run(10'000).exit_code, 3);
  EXPECT_GT(machine.sb_stats().invalidations, 0u);
}

// The guest patches code through SYS_ICACHE_INVAL under the softcache (the
// paper's self-modifying-code contract), with live superblocks over the
// patched region — including the currently executing one. Must agree with
// native on both engines, at sizes that do and do not force eviction churn.
constexpr const char* kSelfModifyingProgram = R"(
  int answer() { return 1011; }
  int main() {
    int before = answer();
    int *code = (int*)answer;
    int patched = 0;
    for (int i = 0; i < 32; i++) {
      if ((code[i] & 0xffff) == 1011) {
        code[i] = (int)((uint)code[i] & 0xffff0000) | 2022;
        patched = 1;
        break;
      }
    }
    if (!patched) return 1;
    __icache_inval((int)code, 128);
    int after = answer();
    if (before != 1011) return 2;
    if (after != 2022) return 3;
    print_str("smc ok\n");
    return 0;
  }
)";

TEST(EngineSmc, IcacheInvalUnderSoftcacheBothEngines) {
  auto img = minicc::CompileMiniC(kSelfModifyingProgram, "smc.mc");
  ASSERT_TRUE(img.ok()) << img.error().ToString();
  const EngineRun native_interp = RunNative(*img, {}, Engine::kInterp);
  const EngineRun native_threaded = RunNative(*img, {}, Engine::kThreaded);
  ASSERT_EQ(native_interp.result.reason, vm::StopReason::kHalted)
      << native_interp.result.fault_message;
  ASSERT_EQ(native_interp.result.exit_code, 0);
  ExpectBitIdentical(native_interp, native_threaded, "native smc");

  for (const uint32_t tcache : {32u * 1024, 1024u}) {
    softcache::SoftCacheConfig config;
    config.tcache_bytes = tcache;
    const EngineRun interp = RunSoftcache(*img, {}, Engine::kInterp, config);
    const EngineRun threaded =
        RunSoftcache(*img, {}, Engine::kThreaded, config);
    ASSERT_EQ(interp.result.reason, vm::StopReason::kHalted)
        << interp.result.fault_message;
    EXPECT_EQ(interp.result.exit_code, 0);
    ExpectBitIdentical(interp, threaded, "tcache=" + std::to_string(tcache));
  }
}

// SYS_READ writing into translated text (self-modifying code staged through
// the input stream) must invalidate superblocks byte by byte.
TEST(EngineSmc, SysReadIntoTextInvalidates) {
  // Pass 1 executes `target` (translating its superblock), then SYS_READ
  // pulls 4 input bytes over it — the encoding of "addi a0, zero, 9" — and
  // pass 2 re-executes it. The read lands on an already-translated block, so
  // the per-byte superblock invalidation in kSysRead is what keeps the
  // threaded engine honest.
  const char* kSource = R"(
    _start:
      li s0, 0
    loop:
      j target
    target:
      addi a0, zero, 1
      addi s0, s0, 1
      li t4, 2
      blt s0, t4, do_read
      sys 0
    do_read:
      la t0, target
      mv a0, t0
      li a1, 4
      sys 4
      j loop
  )";
  auto img = sasm::Assemble(kSource);
  ASSERT_TRUE(img.ok()) << img.error().ToString();
  const uint32_t patch = isa::EncI(isa::Opcode::kAddi, isa::kA0, isa::kZero, 9);
  std::vector<uint8_t> input(4);
  std::memcpy(input.data(), &patch, 4);
  const EngineRun interp = RunNative(*img, input, Engine::kInterp, 1'000);
  const EngineRun threaded = RunNative(*img, input, Engine::kThreaded, 1'000);
  ASSERT_EQ(interp.result.reason, vm::StopReason::kHalted)
      << interp.result.fault_message;
  EXPECT_EQ(interp.result.exit_code, 9);
  ExpectBitIdentical(interp, threaded, "sys_read patch");
}

}  // namespace
}  // namespace sc
