// Robustness fuzzing of the MC/CC wire protocol: the memory controller must
// answer EVERY byte string — random garbage, truncations, bit flips of valid
// frames, hostile lengths — with a well-formed reply (usually kError) and
// never crash or corrupt state. An embedded deployment lives or dies on
// this: the server cannot trust the radio link.
#include <gtest/gtest.h>

#include "minicc/compiler.h"
#include "softcache/mc.h"
#include "softcache/protocol.h"
#include "util/rng.h"

namespace sc {
namespace {

using softcache::MemoryController;
using softcache::MsgType;
using softcache::Reply;
using softcache::Request;

image::Image TestImage() {
  auto img = minicc::CompileMiniC(R"(
    int f(int x) { return x * 2 + 1; }
    int main() { return f(20); }
  )");
  SC_CHECK(img.ok());
  return std::move(*img);
}

// Every reply must itself parse as a valid frame.
void ExpectWellFormedReply(const std::vector<uint8_t>& reply_bytes) {
  auto reply = Reply::Parse(reply_bytes);
  ASSERT_TRUE(reply.ok()) << "MC produced an unparseable reply";
}

TEST(ProtocolFuzz, RandomGarbageNeverCrashesTheServer) {
  const image::Image img = TestImage();
  MemoryController mc(img, softcache::Style::kSparc, 64);
  util::Rng rng(404);
  for (int i = 0; i < 3000; ++i) {
    std::vector<uint8_t> garbage(rng.Below(200));
    for (auto& b : garbage) b = static_cast<uint8_t>(rng.Below(256));
    ExpectWellFormedReply(mc.Handle(garbage));
  }
}

TEST(ProtocolFuzz, BitFlippedValidRequests) {
  const image::Image img = TestImage();
  MemoryController mc(img, softcache::Style::kSparc, 64);
  util::Rng rng(405);
  Request request;
  request.type = MsgType::kChunkRequest;
  request.addr = img.entry;
  const auto valid = request.Serialize();
  for (int i = 0; i < 2000; ++i) {
    auto mutated = valid;
    const int flips = 1 + static_cast<int>(rng.Below(4));
    for (int f = 0; f < flips; ++f) {
      mutated[rng.Below(mutated.size())] ^=
          static_cast<uint8_t>(1u << rng.Below(8));
    }
    ExpectWellFormedReply(mc.Handle(mutated));
  }
}

TEST(ProtocolFuzz, TruncatedAndExtendedFrames) {
  const image::Image img = TestImage();
  MemoryController mc(img, softcache::Style::kSparc, 64);
  Request request;
  request.type = MsgType::kDataRequest;
  request.addr = img.data_base;
  request.length = 32;
  const auto valid = request.Serialize();
  for (size_t len = 0; len <= valid.size(); ++len) {
    std::vector<uint8_t> prefix(valid.begin(), valid.begin() + static_cast<long>(len));
    ExpectWellFormedReply(mc.Handle(prefix));
  }
  auto extended = valid;
  extended.resize(valid.size() + 1000, 0xab);
  ExpectWellFormedReply(mc.Handle(extended));
}

TEST(ProtocolFuzz, HostileRequestFields) {
  const image::Image img = TestImage();
  MemoryController mc(img, softcache::Style::kSparc, 64);
  const struct {
    MsgType type;
    uint32_t addr;
    uint32_t length;
  } kCases[] = {
      {MsgType::kChunkRequest, 0, 0},                      // null address
      {MsgType::kChunkRequest, 0xffffffff, 0},             // wild address
      {MsgType::kChunkRequest, img.entry + 1, 0},          // misaligned
      {MsgType::kDataRequest, img.data_base, 0xffffffff},  // huge length
      {MsgType::kDataRequest, 0xfffffff0, 64},             // wraps address space
      {MsgType::kDataRequest, 0, 16},                      // below data base
      {MsgType::kTextWrite, img.text_base - 4, 8},         // below text
      {MsgType::kTextWrite, img.text_end() - 4, 8},        // straddles end
      {static_cast<MsgType>(0xdead), 0, 0},                // unknown type
  };
  for (const auto& c : kCases) {
    Request request;
    request.type = c.type;
    request.addr = c.addr;
    request.length = c.length;
    if (c.type == MsgType::kTextWrite) request.payload.resize(c.length, 0);
    const auto reply_bytes = mc.Handle(request.Serialize());
    auto reply = Reply::Parse(reply_bytes);
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply->type, MsgType::kError)
        << "type=" << static_cast<uint32_t>(c.type) << " addr=0x" << std::hex
        << c.addr;
  }
}

TEST(ProtocolFuzz, ValidRequestsStillServedAfterAbuse) {
  // After a storm of garbage, the server must still answer real requests.
  const image::Image img = TestImage();
  MemoryController mc(img, softcache::Style::kSparc, 64);
  util::Rng rng(406);
  for (int i = 0; i < 500; ++i) {
    std::vector<uint8_t> garbage(rng.Below(100));
    for (auto& b : garbage) b = static_cast<uint8_t>(rng.Below(256));
    (void)mc.Handle(garbage);
  }
  Request request;
  request.type = MsgType::kChunkRequest;
  request.addr = img.entry;
  auto reply = Reply::Parse(mc.Handle(request.Serialize()));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->type, MsgType::kChunkReply);
  EXPECT_GT(reply->payload.size(), 0u);
}

}  // namespace
}  // namespace sc
