// Robustness fuzzing of the MC/CC wire protocol: the memory controller must
// answer EVERY byte string — random garbage, truncations, bit flips of valid
// frames, hostile lengths — with a well-formed reply (usually kError) and
// never crash or corrupt state. An embedded deployment lives or dies on
// this: the server cannot trust the radio link.
#include <gtest/gtest.h>

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "minicc/compiler.h"
#include "net/switch.h"
#include "net/transport.h"
#include "softcache/mc.h"
#include "softcache/protocol.h"
#include "softcache/system.h"
#include "util/rng.h"

namespace sc {
namespace {

using softcache::MemoryController;
using softcache::MsgType;
using softcache::Reply;
using softcache::Request;

image::Image TestImage() {
  auto img = minicc::CompileMiniC(R"(
    int f(int x) { return x * 2 + 1; }
    int main() { return f(20); }
  )");
  SC_CHECK(img.ok());
  return std::move(*img);
}

// Every reply must itself parse as a valid frame.
void ExpectWellFormedReply(const std::vector<uint8_t>& reply_bytes) {
  auto reply = Reply::Parse(reply_bytes);
  ASSERT_TRUE(reply.ok()) << "MC produced an unparseable reply";
}

TEST(ProtocolFuzz, RandomGarbageNeverCrashesTheServer) {
  const image::Image img = TestImage();
  MemoryController mc(img, softcache::Style::kSparc, 64);
  util::Rng rng(404);
  for (int i = 0; i < 3000; ++i) {
    std::vector<uint8_t> garbage(rng.Below(200));
    for (auto& b : garbage) b = static_cast<uint8_t>(rng.Below(256));
    ExpectWellFormedReply(mc.Handle(garbage));
  }
}

TEST(ProtocolFuzz, BitFlippedValidRequests) {
  const image::Image img = TestImage();
  MemoryController mc(img, softcache::Style::kSparc, 64);
  util::Rng rng(405);
  Request request;
  request.type = MsgType::kChunkRequest;
  request.addr = img.entry;
  const auto valid = request.Serialize();
  for (int i = 0; i < 2000; ++i) {
    auto mutated = valid;
    const int flips = 1 + static_cast<int>(rng.Below(4));
    for (int f = 0; f < flips; ++f) {
      mutated[rng.Below(mutated.size())] ^=
          static_cast<uint8_t>(1u << rng.Below(8));
    }
    ExpectWellFormedReply(mc.Handle(mutated));
  }
}

TEST(ProtocolFuzz, TruncatedAndExtendedFrames) {
  const image::Image img = TestImage();
  MemoryController mc(img, softcache::Style::kSparc, 64);
  Request request;
  request.type = MsgType::kDataRequest;
  request.addr = img.data_base;
  request.length = 32;
  const auto valid = request.Serialize();
  for (size_t len = 0; len <= valid.size(); ++len) {
    std::vector<uint8_t> prefix(valid.begin(), valid.begin() + static_cast<long>(len));
    ExpectWellFormedReply(mc.Handle(prefix));
  }
  auto extended = valid;
  extended.resize(valid.size() + 1000, 0xab);
  ExpectWellFormedReply(mc.Handle(extended));
}

TEST(ProtocolFuzz, HostileRequestFields) {
  const image::Image img = TestImage();
  MemoryController mc(img, softcache::Style::kSparc, 64);
  const struct {
    MsgType type;
    uint32_t addr;
    uint32_t length;
  } kCases[] = {
      {MsgType::kChunkRequest, 0, 0},                      // null address
      {MsgType::kChunkRequest, 0xffffffff, 0},             // wild address
      {MsgType::kChunkRequest, img.entry + 1, 0},          // misaligned
      {MsgType::kDataRequest, img.data_base, 0xffffffff},  // huge length
      {MsgType::kDataRequest, 0xfffffff0, 64},             // wraps address space
      {MsgType::kDataRequest, 0, 16},                      // below data base
      {MsgType::kTextWrite, img.text_base - 4, 8},         // below text
      {MsgType::kTextWrite, img.text_end() - 4, 8},        // straddles end
      {static_cast<MsgType>(0xdead), 0, 0},                // unknown type
  };
  for (const auto& c : kCases) {
    Request request;
    request.type = c.type;
    request.addr = c.addr;
    request.length = c.length;
    if (c.type == MsgType::kTextWrite) request.payload.resize(c.length, 0);
    const auto reply_bytes = mc.Handle(request.Serialize());
    auto reply = Reply::Parse(reply_bytes);
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply->type, MsgType::kError)
        << "type=" << static_cast<uint32_t>(c.type) << " addr=0x" << std::hex
        << c.addr;
  }
}

TEST(ProtocolFuzz, HelloFramesSurviveAbuse) {
  const image::Image img = TestImage();
  MemoryController mc(img, softcache::Style::kSparc, 64);

  // A clean hello handshakes regardless of hostile addr/length/epoch fields.
  Request hello;
  hello.type = MsgType::kHello;
  hello.addr = 0xffffffff;
  hello.epoch = 0xbeef;
  auto ack = Reply::Parse(mc.Handle(hello.Serialize()));
  ASSERT_TRUE(ack.ok());
  EXPECT_EQ(ack->type, MsgType::kHelloAck);
  EXPECT_EQ(ack->addr, mc.epoch());

  // A hello carrying a payload is malformed (hellos are header-only).
  Request fat = hello;
  fat.length = 8;
  fat.payload.assign(8, 0x5a);
  auto reply = Reply::Parse(mc.Handle(fat.Serialize()));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->type, MsgType::kError);

  // Bit-flipped hellos and hello-acks-as-requests never crash the server.
  util::Rng rng(407);
  const auto valid = hello.Serialize();
  for (int i = 0; i < 2000; ++i) {
    auto mutated = valid;
    const int flips = 1 + static_cast<int>(rng.Below(4));
    for (int f = 0; f < flips; ++f) {
      mutated[rng.Below(mutated.size())] ^=
          static_cast<uint8_t>(1u << rng.Below(8));
    }
    ExpectWellFormedReply(mc.Handle(mutated));
  }
  Request impostor;
  impostor.type = MsgType::kHelloAck;  // a reply type arriving as a request
  ExpectWellFormedReply(mc.Handle(impostor.Serialize()));
}

TEST(ProtocolFuzz, RandomEpochStampsNeverBreakTheServer) {
  // Reads are served whatever epoch they claim; writes from other epochs are
  // rejected; every reply stays well-formed and carries the live epoch.
  const image::Image img = TestImage();
  MemoryController mc(img, softcache::Style::kSparc, 64);
  util::Rng rng(408);
  for (int i = 0; i < 500; ++i) {
    Request request;
    request.type = (i % 2 == 0) ? MsgType::kChunkRequest
                                : MsgType::kDataWriteback;
    request.seq = static_cast<uint32_t>(1000 + i);
    request.addr = (i % 2 == 0) ? img.entry : img.data_base;
    request.epoch = static_cast<uint32_t>(rng.Below(0x10000));
    if (request.type == MsgType::kDataWriteback) {
      request.length = 4;
      request.payload = {1, 2, 3, 4};
    }
    auto reply = Reply::Parse(mc.Handle(request.Serialize()));
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply->epoch, mc.epoch());
    if (request.type == MsgType::kChunkRequest) {
      EXPECT_EQ(reply->type, MsgType::kChunkReply);
    } else if (request.epoch != mc.epoch()) {
      EXPECT_EQ(reply->type, MsgType::kError);
    }
    if (i % 100 == 99) mc.Restart();  // keep the live epoch moving
  }
}

// A transport that answers chunk requests with attacker-crafted batch
// replies (everything else is served by the real MC). Exercises the CC's
// kChunkBatchReply install path — sub-chunk header parsing, word-count
// bounds, trailing-byte detection — under the sanitizer build.
class HostileBatchTransport : public net::Transport {
 public:
  using Craft = std::function<Reply(const Request&)>;
  HostileBatchTransport(MemoryController& mc, Craft craft)
      : mc_(mc), craft_(std::move(craft)) {}

  uint64_t Send(const std::vector<uint8_t>& frame) override {
    ++stats_.frames_sent;
    auto request = Request::Parse(frame);
    SC_CHECK(request.ok());
    if (request->type == MsgType::kChunkRequest) {
      Reply evil = craft_(*request);
      evil.seq = request->seq;
      inbox_.push_back(evil.Serialize());
    } else {
      inbox_.push_back(mc_.Handle(frame));
    }
    return 0;
  }
  bool Recv(std::vector<uint8_t>* frame, uint64_t* cycles) override {
    if (inbox_.empty()) return false;
    *frame = std::move(inbox_.front());
    inbox_.pop_front();
    *cycles = 0;
    ++stats_.frames_delivered;
    return true;
  }
  const net::TransportStats& stats() const override { return stats_; }

 private:
  MemoryController& mc_;
  Craft craft_;
  std::deque<std::vector<uint8_t>> inbox_;
  net::TransportStats stats_;
};

TEST(ProtocolFuzz, HostileBatchRepliesFailCleanlyThroughCcInstallPath) {
  const image::Image img = TestImage();
  struct Case {
    const char* name;
    HostileBatchTransport::Craft craft;
  };
  const auto batch = [](uint32_t count, std::vector<uint8_t> payload) {
    Reply reply;
    reply.type = MsgType::kChunkBatchReply;
    reply.aux = count;
    reply.payload = std::move(payload);
    return reply;
  };
  const std::vector<Case> kCases = {
      {"short sub-chunk header",
       [&](const Request&) { return batch(2, std::vector<uint8_t>(8, 0xaa)); }},
      {"word count overflows payload",
       [&](const Request& r) {
         std::vector<uint8_t> payload(16, 0);
         payload[0] = static_cast<uint8_t>(r.addr);  // addr field (ignored)
         payload[12] = 0xff;                         // nwords = huge
         payload[13] = 0xff;
         return batch(1, payload);
       }},
      {"trailing bytes after last sub-chunk",
       [&](const Request&) {
         std::vector<uint8_t> payload(16, 0);  // one empty sub-chunk
         payload.push_back(0xcc);
         payload.push_back(0xcc);
         return batch(1, payload);
       }},
      {"empty batch",
       [&](const Request&) { return batch(0, std::vector<uint8_t>{}); }},
      {"absurd chunk count",
       [&](const Request&) {
         return batch(0xffffff, std::vector<uint8_t>(24, 0x11));
       }},
  };

  for (const Case& c : kCases) {
    softcache::SoftCacheConfig config;
    MemoryController* mc_ptr = nullptr;
    config.transport_factory =
        [&](MemoryController& mc,
            net::Channel&) -> std::unique_ptr<net::Transport> {
      mc_ptr = &mc;
      return std::make_unique<HostileBatchTransport>(mc, c.craft);
    };
    softcache::SoftCacheSystem system(img, config);
    const vm::RunResult result = system.Run(1'000'000);
    EXPECT_EQ(result.reason, vm::StopReason::kFault) << c.name;
    EXPECT_FALSE(result.fault_message.empty()) << c.name;
    ASSERT_NE(mc_ptr, nullptr);
  }
}

TEST(ProtocolFuzz, HostileClientIdsThroughTheSwitchDemux) {
  // Frames carrying arbitrary client ids arrive on switch ports they don't
  // belong to: every one must come back as a well-formed reply, misrouted
  // ids must never create or touch the spoofed session, and the port's own
  // session must keep working afterwards.
  const image::Image img = TestImage();
  MemoryController mc(img, softcache::Style::kSparc, 64);
  net::Switch net_switch(
      [&mc](uint32_t port, const std::vector<uint8_t>& frame) {
        return mc.HandlePort(port, frame);
      });
  net::FrameHandler ports[3] = {net_switch.Port(0), net_switch.Port(1),
                                net_switch.Port(2)};
  util::Rng rng(505);
  uint64_t misroutes = 0;
  for (int i = 0; i < 2000; ++i) {
    Request request;
    request.type = static_cast<MsgType>(rng.Below(16));
    request.seq = static_cast<uint32_t>(1 + rng.Below(1000));
    request.addr = static_cast<uint32_t>(rng.Below(1u << 20));
    request.epoch = static_cast<uint32_t>(rng.Below(4));
    request.client_id = static_cast<uint32_t>(rng.Below(256));
    if (request.type == MsgType::kDataWriteback ||
        request.type == MsgType::kTextWrite) {
      request.payload.resize(rng.Below(16));
      request.length = static_cast<uint32_t>(request.payload.size());
    }
    const uint32_t port = static_cast<uint32_t>(rng.Below(3));
    const auto reply_bytes = ports[port](request.Serialize());
    ExpectWellFormedReply(reply_bytes);
    const auto reply = Reply::Parse(reply_bytes);
    if (request.client_id != port) {
      ++misroutes;
      // Rejected at the demux: the reply is an error stamped with the PORT's
      // session identity, never the spoofed one.
      EXPECT_EQ(reply->type, MsgType::kError);
      EXPECT_EQ(reply->client_id, port);
    }
  }
  EXPECT_GT(misroutes, 0u);
  EXPECT_EQ(mc.server().stats().misrouted_frames, misroutes);
  // Only the three ports (plus the pre-created session 0) ever materialized:
  // spoofing 253 other ids never instantiated their sessions.
  EXPECT_LE(mc.sessions_active(), 3u);
  for (uint32_t id = 3; id < 256; ++id) {
    EXPECT_EQ(mc.FindSession(id), nullptr);
  }
  // The abused ports still serve real traffic.
  for (uint32_t port = 0; port < 3; ++port) {
    Request request;
    request.type = MsgType::kChunkRequest;
    request.seq = 5000 + port;
    request.addr = img.entry;
    request.client_id = port;
    request.epoch = mc.session(port).epoch();
    const auto reply = Reply::Parse(ports[port](request.Serialize()));
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply->type, MsgType::kChunkReply);
  }
}

TEST(ProtocolFuzz, CrossPostedStaleEpochFramesStayFenced) {
  // A frame replayed onto the RIGHT port but carrying a pre-restart epoch
  // (e.g. a delayed duplicate surfacing after that session crashed) must be
  // rejected by the epoch fence without touching any other session.
  const image::Image img = TestImage();
  MemoryController mc(img, softcache::Style::kSparc, 64);
  net::Switch net_switch(
      [&mc](uint32_t port, const std::vector<uint8_t>& frame) {
        return mc.HandlePort(port, frame);
      });
  net::FrameHandler port1 = net_switch.Port(1);
  net::FrameHandler port2 = net_switch.Port(2);

  Request write;
  write.type = MsgType::kDataWriteback;
  write.seq = 1;
  write.addr = mc.DataBase();
  write.client_id = 1;
  write.epoch = 0;
  write.payload = {1, 2, 3, 4};
  write.length = 4;
  const auto frame = write.Serialize();  // captured pre-crash
  ASSERT_EQ(Reply::Parse(port1(frame))->type, MsgType::kWritebackAck);

  mc.RestartSession(1);

  // Same bytes, right port, stale epoch -> fenced.
  const auto fenced = Reply::Parse(port1(frame));
  EXPECT_EQ(fenced->type, MsgType::kError);
  EXPECT_EQ(mc.session(1).stats().stale_epoch_rejects, 1u);
  // Same bytes cross-posted to another port -> rejected as misrouted BEFORE
  // the epoch fence; session 2's epoch state is untouched.
  const auto crossed = Reply::Parse(port2(frame));
  EXPECT_EQ(crossed->type, MsgType::kError);
  EXPECT_EQ(crossed->client_id, 2u);
  EXPECT_EQ(mc.session(2).stats().stale_epoch_rejects, 0u);
  EXPECT_EQ(mc.session(2).stats().requests, 0u);
  EXPECT_EQ(mc.server().stats().misrouted_frames, 1u);
}

// ---------------------------------------------------------------------------
// Corrupted digest/batch replies against the integrity-enabled install path
// ---------------------------------------------------------------------------

// A transport that rewrites kChunkSharedRequest answers into hostile
// kChunkDigestReply frames (everything else served by the real MC):
// the CC must treat every crafted digest as untrusted and heal through
// the full-body fallback, never silently installing someone else's body.
class HostileDigestTransport : public net::Transport {
 public:
  using Craft = std::function<Reply(const Request&)>;
  HostileDigestTransport(MemoryController& mc, Craft craft)
      : mc_(mc), craft_(std::move(craft)) {}

  uint64_t Send(const std::vector<uint8_t>& frame) override {
    ++stats_.frames_sent;
    auto request = Request::Parse(frame);
    SC_CHECK(request.ok());
    if (request->type == MsgType::kChunkSharedRequest) {
      Reply evil = craft_(*request);
      evil.seq = request->seq;
      inbox_.push_back(evil.Serialize());
    } else {
      inbox_.push_back(mc_.Handle(frame));
    }
    return 0;
  }
  bool Recv(std::vector<uint8_t>* frame, uint64_t* cycles) override {
    if (inbox_.empty()) return false;
    *frame = std::move(inbox_.front());
    inbox_.pop_front();
    *cycles = 0;
    ++stats_.frames_delivered;
    return true;
  }
  const net::TransportStats& stats() const override { return stats_; }

 private:
  MemoryController& mc_;
  Craft craft_;
  std::deque<std::vector<uint8_t>> inbox_;
  net::TransportStats stats_;
};

TEST(ProtocolFuzz, CorruptedDigestRepliesHealThroughFullBodyFallback) {
  // Every shared request is answered with a digest that matches nothing
  // (bit-flipped per request). With integrity checking on, the CC must
  // fall back to a full-body fetch for every single one and still produce
  // the correct run — zero silent installs, zero faults.
  const image::Image img = TestImage();

  softcache::SoftCacheConfig clean_config;
  softcache::SoftCacheSystem clean(img, clean_config);
  const vm::RunResult clean_result = clean.Run(1'000'000);
  ASSERT_EQ(clean_result.reason, vm::StopReason::kHalted);

  softcache::SoftCacheConfig config;
  config.shared_reply = true;
  config.integrity.enabled = true;
  config.transport_factory =
      [&](MemoryController& mc,
          net::Channel&) -> std::unique_ptr<net::Transport> {
    return std::make_unique<HostileDigestTransport>(
        mc, [](const Request& r) {
          Reply evil;
          evil.type = MsgType::kChunkDigestReply;
          // A digest nothing in the run ever published: both words are
          // address-derived garbage.
          evil.aux = r.addr ^ 0xdeadbeef;
          evil.extra = ~r.addr;
          return evil;
        });
  };
  softcache::SoftCacheSystem system(img, config);
  const vm::RunResult result = system.Run(1'000'000);
  EXPECT_EQ(result.reason, vm::StopReason::kHalted) << result.fault_message;
  EXPECT_EQ(result.exit_code, clean_result.exit_code);
  EXPECT_EQ(system.OutputString(), clean.OutputString());
  // Every crafted digest read as a miss and healed through the fallback.
  EXPECT_GT(system.stats().shared.digest_replies, 0u);
  EXPECT_EQ(system.stats().shared.digest_misses,
            system.stats().shared.digest_replies);
  EXPECT_EQ(system.stats().shared.digest_hits, 0u);
}

TEST(ProtocolFuzz, HostileBatchRepliesFailCleanlyWithIntegrityOn) {
  // The same hostile batch payloads as above, but with the integrity layer
  // stamping/verifying installs: every corruption must still be rejected
  // before execution (clean Fail), never silently installed — and the
  // digest machinery must not mask the parse errors.
  const image::Image img = TestImage();
  struct Case {
    const char* name;
    HostileBatchTransport::Craft craft;
  };
  const auto batch = [](uint32_t count, std::vector<uint8_t> payload) {
    Reply reply;
    reply.type = MsgType::kChunkBatchReply;
    reply.aux = count;
    reply.payload = std::move(payload);
    return reply;
  };
  const std::vector<Case> kCases = {
      {"short sub-chunk header",
       [&](const Request&) { return batch(2, std::vector<uint8_t>(8, 0xaa)); }},
      {"word count overflows payload",
       [&](const Request& r) {
         std::vector<uint8_t> payload(16, 0);
         payload[0] = static_cast<uint8_t>(r.addr);
         payload[12] = 0xff;
         payload[13] = 0xff;
         return batch(1, payload);
       }},
      {"head addr is not the demanded addr",
       [&](const Request& r) {
         // A structurally valid one-chunk batch whose head claims a
         // different address: must be rejected by the addr binding, not
         // installed at the attacker's address.
         std::vector<uint8_t> payload(16, 0);
         const uint32_t addr = r.addr + 0x40;
         payload[0] = static_cast<uint8_t>(addr);
         payload[1] = static_cast<uint8_t>(addr >> 8);
         payload[2] = static_cast<uint8_t>(addr >> 16);
         payload[3] = static_cast<uint8_t>(addr >> 24);
         return batch(1, payload);
       }},
      {"empty batch",
       [&](const Request&) { return batch(0, std::vector<uint8_t>{}); }},
  };

  for (const Case& c : kCases) {
    softcache::SoftCacheConfig config;
    config.integrity.enabled = true;
    config.transport_factory =
        [&](MemoryController& mc,
            net::Channel&) -> std::unique_ptr<net::Transport> {
      return std::make_unique<HostileBatchTransport>(mc, c.craft);
    };
    softcache::SoftCacheSystem system(img, config);
    const vm::RunResult result = system.Run(1'000'000);
    EXPECT_EQ(result.reason, vm::StopReason::kFault) << c.name;
    EXPECT_FALSE(result.fault_message.empty()) << c.name;
    EXPECT_EQ(system.stats().blocks_translated, 0u)
        << c.name << ": a hostile batch reached the install path";
  }
}

TEST(ProtocolFuzz, ValidRequestsStillServedAfterAbuse) {
  // After a storm of garbage, the server must still answer real requests.
  const image::Image img = TestImage();
  MemoryController mc(img, softcache::Style::kSparc, 64);
  util::Rng rng(406);
  for (int i = 0; i < 500; ++i) {
    std::vector<uint8_t> garbage(rng.Below(100));
    for (auto& b : garbage) b = static_cast<uint8_t>(rng.Below(256));
    (void)mc.Handle(garbage);
  }
  Request request;
  request.type = MsgType::kChunkRequest;
  request.addr = img.entry;
  auto reply = Reply::Parse(mc.Handle(request.Serialize()));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->type, MsgType::kChunkReply);
  EXPECT_GT(reply->payload.size(), 0u);
}

}  // namespace
}  // namespace sc
