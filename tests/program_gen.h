// Random (but always-terminating) MiniC program generator, shared by the
// property tests (softcache vs native) and the engine differential tests
// (threaded vs interpreter). Programs form a call-DAG with bounded loops, so
// every generated program halts; the checksum printed at the end makes any
// divergence visible in the output bytes as well as the exit code.
#pragma once

#include <sstream>
#include <string>

#include "util/rng.h"

namespace sc {

class ProgramGen {
 public:
  explicit ProgramGen(uint64_t seed) : rng_(seed) {}

  // Generates a complete program: a few globals (including a struct and a
  // char buffer), a call-DAG of functions, and a main that exercises them
  // and returns a checksum. With arm_safe=false the program additionally
  // uses dense switches and function-pointer tables (computed jumps), which
  // only the SPARC-style prototype supports.
  std::string Generate(bool arm_safe = true) {
    arm_safe_ = arm_safe;
    out_.str("");
    out_ << "uint check = 2166136261;\n";
    out_ << "int garr[32];\n";
    out_ << "char gbuf[64];\n";
    out_ << "struct pair { int first; int second; };\n";
    out_ << "struct pair gpair;\n";
    out_ << "int gscalar = " << rng_.Range(-50, 50) << ";\n";
    out_ << "void mix(int v) { check = (check ^ (uint)v) * 16777619; }\n";

    const int nfuncs = static_cast<int>(rng_.Range(2, 5));
    for (int i = 0; i < nfuncs; ++i) EmitFunction(i);

    if (!arm_safe_) {
      // Function-pointer dispatch table over the generated functions.
      out_ << "int (*table[" << nfuncs << "])(int, int) = {";
      for (int i = 0; i < nfuncs; ++i) out_ << (i ? ", f" : " f") << i;
      out_ << " };\n";
      // A dense switch (compiles to a jump table -> computed jump).
      out_ << "int classify(int v) {\n  switch (v & 7) {\n";
      for (int c = 0; c < 7; ++c) {
        out_ << "    case " << c << ": return " << rng_.Range(1, 99) << ";\n";
      }
      out_ << "    default: return " << rng_.Range(1, 99) << ";\n  }\n}\n";
    }

    out_ << "int main() {\n";
    const int calls = static_cast<int>(rng_.Range(3, 8));
    for (int i = 0; i < calls; ++i) {
      const int callee = static_cast<int>(rng_.Below(static_cast<uint64_t>(nfuncs)));
      out_ << "  mix(f" << callee << "(" << rng_.Range(-100, 100) << ", "
           << rng_.Range(1, 40) << "));\n";
    }
    if (!arm_safe_) {
      out_ << "  for (int i = 0; i < 40; i++) mix(table[i % " << nfuncs
           << "](i, 5) + classify(i));\n";
    }
    out_ << "  gpair.first = (int)check;\n";
    out_ << "  gpair.second = gscalar;\n";
    out_ << "  mix(gpair.first ^ gpair.second);\n";
    out_ << "  for (int i = 0; i < 32; i++) mix(garr[i]);\n";
    out_ << "  for (int i = 0; i < 64; i++) mix((int)gbuf[i]);\n";
    out_ << "  mix((int)crc32(gbuf, 64));\n";
    out_ << "  print_hex(check);\n";
    out_ << "  return (int)(check & 127);\n";
    out_ << "}\n";
    return out_.str();
  }

 private:
  // Functions form a DAG: f<i> may call f<j> only for j < i, so the
  // generator can never build unbounded recursion.
  void EmitFunction(int index) {
    out_ << "int f" << index << "(int a, int b) {\n";
    out_ << "  int x = a;\n  int y = b;\n  int z = 1;\n";
    depth_ = 0;
    max_callee_ = index;  // may call f0..f<index-1>
    call_budget_ = 2;
    const int stmts = static_cast<int>(rng_.Range(3, 9));
    for (int i = 0; i < stmts; ++i) EmitStatement(1);
    out_ << "  return x + y * 3 + z;\n}\n";
  }

  void Indent(int level) {
    for (int i = 0; i < level; ++i) out_ << "  ";
  }

  void EmitStatement(int level) {
    if (level > 3) {
      Indent(level);
      out_ << "x += " << rng_.Range(-5, 5) << ";\n";
      return;
    }
    switch (rng_.Below(8)) {
      case 0: {  // assignment with a random expression
        Indent(level);
        out_ << Var() << " = " << Expr(2) << ";\n";
        break;
      }
      case 1: {  // bounded for loop
        const int bound = static_cast<int>(rng_.Range(1, 20));
        Indent(level);
        out_ << "for (int i" << level << " = 0; i" << level << " < " << bound
             << "; i" << level << "++) {\n";
        EmitStatement(level + 1);
        if (rng_.Chance(1, 2)) EmitStatement(level + 1);
        Indent(level);
        out_ << "}\n";
        break;
      }
      case 2: {  // if/else
        Indent(level);
        out_ << "if (" << Expr(1) << " " << CmpOp() << " " << Expr(1) << ") {\n";
        EmitStatement(level + 1);
        Indent(level);
        if (rng_.Chance(1, 2)) {
          out_ << "} else {\n";
          EmitStatement(level + 1);
          Indent(level);
        }
        out_ << "}\n";
        break;
      }
      case 3: {  // global array write (masked index)
        Indent(level);
        out_ << "garr[(" << Expr(1) << ") & 31] = " << Expr(2) << ";\n";
        break;
      }
      case 4: {  // call a previously defined function (top level only, and
                 // at most twice per function, to bound total work)
        if (max_callee_ > 0 && level == 1 && call_budget_ > 0) {
          --call_budget_;
          Indent(level);
          out_ << Var() << " += f" << rng_.Below(static_cast<uint64_t>(max_callee_))
               << "(" << Expr(1) << ", " << Expr(1) << ");\n";
        } else {
          Indent(level);
          out_ << "z ^= " << Expr(2) << ";\n";
        }
        break;
      }
      case 5: {  // while with a strictly decreasing counter (unique name)
        Indent(level);
        const std::string counter = "w" + std::to_string(next_counter_++);
        out_ << "int " << counter << " = " << rng_.Range(1, 12) << ";\n";
        Indent(level);
        out_ << "while (" << counter << " > 0) {\n";
        EmitStatement(level + 1);
        Indent(level + 1);
        out_ << counter << "--;\n";
        Indent(level);
        out_ << "}\n";
        break;
      }
      case 6: {  // global scalar / struct / char-buffer updates
        Indent(level);
        switch (rng_.Below(3)) {
          case 0:
            out_ << "gscalar = gscalar " << ArithOp() << " (" << Expr(1)
                 << " | 1);\n";
            break;
          case 1:
            out_ << "gbuf[(" << Expr(1) << ") & 63] = (char)(" << Expr(1)
                 << ");\n";
            break;
          default:
            out_ << (rng_.Chance(1, 2) ? "gpair.first" : "gpair.second")
                 << " ^= " << Expr(1) << ";\n";
            break;
        }
        break;
      }
      default: {  // compound update of a local
        Indent(level);
        out_ << Var() << " " << CompoundOp() << " " << Expr(2) << ";\n";
        break;
      }
    }
  }

  std::string Var() {
    static const char* const kVars[] = {"x", "y", "z"};
    return kVars[rng_.Below(3)];
  }

  const char* ArithOp() {
    static const char* const kOps[] = {"+", "-", "*", "/", "%", "^", "&", "|"};
    return kOps[rng_.Below(8)];
  }
  const char* CompoundOp() {
    static const char* const kOps[] = {"+=", "-=", "*=", "^=", "|=", "&="};
    return kOps[rng_.Below(6)];
  }
  const char* CmpOp() {
    static const char* const kOps[] = {"<", ">", "<=", ">=", "==", "!="};
    return kOps[rng_.Below(6)];
  }

  // Expressions: division/modulo are always by (expr | 1) so they cannot
  // trap, and shifts use constant amounts.
  std::string Expr(int depth) {
    if (depth == 0) {
      switch (rng_.Below(5)) {
        case 0: return Var();
        case 1: return std::to_string(rng_.Range(-100, 100));
        case 2: return "gscalar";
        case 3: return "garr[(x ^ y) & 31]";
        default: return "a + b";
      }
    }
    const std::string lhs = Expr(depth - 1);
    const std::string rhs = Expr(depth - 1);
    switch (rng_.Below(7)) {
      case 0: return "(" + lhs + " + " + rhs + ")";
      case 1: return "(" + lhs + " - " + rhs + ")";
      case 2: return "(" + lhs + " * " + rhs + ")";
      case 3: return "(" + lhs + " / ((" + rhs + ") | 1))";
      case 4: return "(" + lhs + " % ((" + rhs + ") | 1))";
      case 5: return "(" + lhs + " << " + std::to_string(rng_.Below(5)) + ")";
      default: return "(" + lhs + " ^ " + rhs + ")";
    }
  }

  util::Rng rng_;
  std::ostringstream out_;
  int depth_ = 0;
  int max_callee_ = 0;
  int call_budget_ = 0;
  int next_counter_ = 0;
  bool arm_safe_ = true;
};

}  // namespace sc
