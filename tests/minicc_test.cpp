// End-to-end MiniC compiler tests: compile a program, run it on the VM,
// check exit codes and console output.
#include <gtest/gtest.h>

#include "tests/testing.h"

namespace sc {
namespace {

using testing::CompileAndRun;
using testing::ExpectProgram;

TEST(MiniccBasic, ReturnsConstant) {
  ExpectProgram("int main() { return 42; }", 42);
}

TEST(MiniccBasic, Arithmetic) {
  ExpectProgram("int main() { return 2 + 3 * 4 - 6 / 2; }", 11);
}

TEST(MiniccBasic, Precedence) {
  ExpectProgram("int main() { return (2 + 3) * 4 % 7; }", 6);
}

TEST(MiniccBasic, UnaryOps) {
  ExpectProgram("int main() { return -(-5) + ~0 + !0 + !7; }", 5);
}

TEST(MiniccBasic, Bitwise) {
  ExpectProgram("int main() { return (0xf0 | 0x0f) ^ 0x3c & 0xff; }", 0xc3);
}

TEST(MiniccBasic, Shifts) {
  ExpectProgram("int main() { return (1 << 5) + (256 >> 3); }", 64);
}

TEST(MiniccBasic, SignedShiftRight) {
  ExpectProgram("int main() { int x = -16; return x >> 2 == -4; }", 1);
}

TEST(MiniccBasic, UnsignedShiftRight) {
  ExpectProgram("int main() { uint x = (uint)-16; return (x >> 28) == 15; }", 1);
}

TEST(MiniccBasic, SignedDivision) {
  ExpectProgram("int main() { return -7 / 2 == -3 && -7 % 2 == -1; }", 1);
}

TEST(MiniccBasic, UnsignedComparison) {
  ExpectProgram("int main() { uint big = 0x80000000; return big > 1; }", 1);
}

TEST(MiniccBasic, SignedComparison) {
  ExpectProgram("int main() { int neg = (int)0x80000000; return neg < 1; }", 1);
}

TEST(MiniccControl, IfElse) {
  ExpectProgram(R"(
    int classify(int x) {
      if (x < 0) return 1;
      else if (x == 0) return 2;
      else return 3;
    }
    int main() { return classify(-5) * 100 + classify(0) * 10 + classify(9); }
  )", 123);
}

TEST(MiniccControl, WhileLoop) {
  ExpectProgram(R"(
    int main() {
      int i = 0; int sum = 0;
      while (i < 10) { sum += i; i++; }
      return sum;
    }
  )", 45);
}

TEST(MiniccControl, ForLoop) {
  ExpectProgram(R"(
    int main() {
      int sum = 0;
      for (int i = 1; i <= 10; i++) sum += i;
      return sum;
    }
  )", 55);
}

TEST(MiniccControl, DoWhile) {
  ExpectProgram(R"(
    int main() {
      int n = 0;
      do { n++; } while (n < 3);
      return n;
    }
  )", 3);
}

TEST(MiniccControl, BreakContinue) {
  ExpectProgram(R"(
    int main() {
      int sum = 0;
      for (int i = 0; i < 100; i++) {
        if (i % 2 == 0) continue;
        if (i > 10) break;
        sum += i;
      }
      return sum;  /* 1+3+5+7+9 */
    }
  )", 25);
}

TEST(MiniccControl, NestedLoops) {
  ExpectProgram(R"(
    int main() {
      int count = 0;
      for (int i = 0; i < 5; i++)
        for (int j = 0; j < i; j++)
          count++;
      return count;
    }
  )", 10);
}

TEST(MiniccControl, ShortCircuitAnd) {
  ExpectProgram(R"(
    int calls = 0;
    int bump() { calls++; return 1; }
    int main() { int r = 0 && bump(); return calls * 10 + r; }
  )", 0);
}

TEST(MiniccControl, ShortCircuitOr) {
  ExpectProgram(R"(
    int calls = 0;
    int bump() { calls++; return 0; }
    int main() { int r = 1 || bump(); return calls * 10 + r; }
  )", 1);
}

TEST(MiniccControl, Ternary) {
  ExpectProgram("int main() { int x = 5; return x > 3 ? 7 : 9; }", 7);
}

TEST(MiniccControl, SwitchSparse) {
  ExpectProgram(R"(
    int f(int x) {
      switch (x) {
        case 1: return 10;
        case 100: return 20;
        case -7: return 30;
        default: return 40;
      }
    }
    int main() { return f(1) + f(100) + f(-7) + f(55); }
  )", 100);
}

TEST(MiniccControl, SwitchDenseJumpTable) {
  // >= 4 dense cases trigger the jump-table path (a computed jump).
  ExpectProgram(R"(
    int f(int x) {
      switch (x) {
        case 0: return 1;
        case 1: return 2;
        case 2: return 4;
        case 3: return 8;
        case 4: return 16;
        case 5: return 32;
        default: return 0;
      }
    }
    int main() {
      int sum = 0;
      for (int i = -2; i < 8; i++) sum += f(i);
      return sum;
    }
  )", 63);
}

TEST(MiniccControl, SwitchFallthrough) {
  ExpectProgram(R"(
    int main() {
      int sum = 0;
      switch (2) {
        case 1: sum += 1;
        case 2: sum += 2;
        case 3: sum += 4;
          break;
        case 4: sum += 8;
      }
      return sum;
    }
  )", 6);
}

TEST(MiniccFunctions, Recursion) {
  ExpectProgram(R"(
    int fib(int n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }
    int main() { return fib(12); }
  )", 144);
}

TEST(MiniccFunctions, SixArguments) {
  ExpectProgram(R"(
    int sum6(int a, int b, int c, int d, int e, int f) {
      return a + 2*b + 3*c + 4*d + 5*e + 6*f;
    }
    int main() { return sum6(1, 1, 1, 1, 1, 1); }
  )", 21);
}

TEST(MiniccFunctions, MutualRecursion) {
  ExpectProgram(R"(
    int is_odd(int n);
    int is_even(int n) { return n == 0 ? 1 : is_odd(n - 1); }
    int is_odd(int n) { return n == 0 ? 0 : is_even(n - 1); }
    int main() { return is_even(10) * 10 + is_odd(7); }
  )", 11);
}

TEST(MiniccFunctions, FunctionPointer) {
  ExpectProgram(R"(
    int add(int a, int b) { return a + b; }
    int sub(int a, int b) { return a - b; }
    int main() {
      int (*op)(int, int);
      op = add;
      int x = op(10, 3);
      op = sub;
      return x + op(10, 3);
    }
  )", 20);
}

TEST(MiniccFunctions, FunctionPointerTable) {
  ExpectProgram(R"(
    int add(int a, int b) { return a + b; }
    int sub(int a, int b) { return a - b; }
    int mul(int a, int b) { return a * b; }
    int (*ops[3])(int, int) = { add, sub, mul };
    int main() {
      int sum = 0;
      for (int i = 0; i < 3; i++) sum += ops[i](12, 4);
      return sum;  /* 16 + 8 + 48 */
    }
  )", 72);
}

TEST(MiniccData, GlobalScalars) {
  ExpectProgram(R"(
    int g = 42;
    uint h = 0xdeadbeef;
    char c = 'x';
    int main() { return g + (int)(h & 1) + (c == 'x' ? 1 : 0); }
  )", 44);
}

TEST(MiniccData, GlobalArrayInit) {
  ExpectProgram(R"(
    int squares[5] = { 0, 1, 4, 9, 16 };
    int main() {
      int sum = 0;
      for (int i = 0; i < 5; i++) sum += squares[i];
      return sum;
    }
  )", 30);
}

TEST(MiniccData, GlobalCharArrayString) {
  ExpectProgram(R"(
    char greeting[16] = "hi";
    int main() { return greeting[0] == 'h' && greeting[1] == 'i' && greeting[2] == 0; }
  )", 1);
}

TEST(MiniccData, LocalArrays) {
  ExpectProgram(R"(
    int main() {
      int a[8];
      for (int i = 0; i < 8; i++) a[i] = i * i;
      int sum = 0;
      for (int i = 0; i < 8; i++) sum += a[i];
      return sum;
    }
  )", 140);
}

TEST(MiniccData, PointerArithmetic) {
  ExpectProgram(R"(
    int main() {
      int a[4];
      a[0] = 1; a[1] = 2; a[2] = 3; a[3] = 4;
      int *p = a;
      int *q = p + 3;
      return *q + (int)(q - p);
    }
  )", 7);
}

TEST(MiniccData, PointerWrite) {
  ExpectProgram(R"(
    void store(int *p, int v) { *p = v; }
    int main() { int x = 0; store(&x, 99); return x; }
  )", 99);
}

TEST(MiniccData, CharPointerString) {
  ExpectProgram(R"(
    int main() {
      char *s = "hello";
      return strlen(s);
    }
  )", 5);
}

TEST(MiniccData, Structs) {
  ExpectProgram(R"(
    struct point { int x; int y; };
    struct point origin;
    int main() {
      struct point p;
      p.x = 3; p.y = 4;
      struct point *q = &p;
      q->x += 10;
      return p.x * p.y + origin.x;
    }
  )", 52);
}

TEST(MiniccData, NestedStructAccess) {
  ExpectProgram(R"(
    struct inner { int v; char tag; };
    struct outer { int id; struct inner in; };
    int main() {
      struct outer o;
      o.id = 7;
      o.in.v = 5;
      o.in.tag = 'z';
      return o.id + o.in.v + (o.in.tag == 'z' ? 1 : 0);
    }
  )", 13);
}

TEST(MiniccData, StructArray) {
  ExpectProgram(R"(
    struct entry { int key; int value; };
    struct entry table[4];
    int main() {
      for (int i = 0; i < 4; i++) { table[i].key = i; table[i].value = i * 10; }
      int sum = 0;
      for (int i = 0; i < 4; i++) sum += table[i].value;
      return sum;
    }
  )", 60);
}

TEST(MiniccData, SizeofTypes) {
  ExpectProgram(R"(
    struct pair { int a; char b; };
    int main() {
      return (int)sizeof(int) * 1000 + (int)sizeof(char) * 100 +
             (int)sizeof(int*) * 10 + (int)sizeof(struct pair);
    }
  )", 4148);
}

TEST(MiniccData, CharTruncation) {
  ExpectProgram("int main() { char c = (char)0x1ff; return (int)c; }", 0xff);
}

TEST(MiniccData, IncDec) {
  ExpectProgram(R"(
    int main() {
      int x = 5;
      int a = x++;   /* a=5 x=6 */
      int b = ++x;   /* b=7 x=7 */
      int c = x--;   /* c=7 x=6 */
      int d = --x;   /* d=5 x=5 */
      return a * 1000 + b * 100 + c * 10 + d;
    }
  )", 5775);
}

TEST(MiniccData, PointerIncDec) {
  ExpectProgram(R"(
    int main() {
      int a[3];
      a[0] = 10; a[1] = 20; a[2] = 30;
      int *p = a;
      p++;
      int v = *p;
      p--;
      return v + *p;
    }
  )", 30);
}

TEST(MiniccData, CompoundAssign) {
  ExpectProgram(R"(
    int main() {
      int x = 10;
      x += 5; x -= 3; x *= 4; x /= 2; x %= 13;
      x <<= 2; x >>= 1; x |= 8; x &= 14; x ^= 3;
      return x;
    }
  )", 13);
}

TEST(MiniccIo, PutcAndWrite) {
  ExpectProgram(R"(
    int main() {
      print_str("ok");
      __putc(10);
      return 0;
    }
  )", 0, "ok\n");
}

TEST(MiniccIo, PrintInt) {
  ExpectProgram(R"(
    int main() {
      print_int(-12345);
      print_nl();
      print_uint((uint)4000000000);
      print_nl();
      print_hex(0xcafe);
      return 0;
    }
  )", 0, "-12345\n4000000000\ncafe");
}

TEST(MiniccIo, EchoInput) {
  ExpectProgram(R"(
    int main() {
      int c;
      while ((c = getchar()) != -1) putchar(c);
      return 0;
    }
  )", 0, "abc", "abc");
}

TEST(MiniccIo, ReadBytes) {
  ExpectProgram(R"(
    int main() {
      char buf[16];
      int n = read_bytes(buf, 16);
      return n;
    }
  )", 5, "", "12345");
}

TEST(MiniccRuntime, Malloc) {
  ExpectProgram(R"(
    int main() {
      int *a = (int*)malloc(10 * (int)sizeof(int));
      for (int i = 0; i < 10; i++) a[i] = i;
      int sum = 0;
      for (int i = 0; i < 10; i++) sum += a[i];
      free((char*)a);
      int *b = (int*)malloc(4);   /* should reuse the freed block */
      *b = 7;
      return sum + *b;
    }
  )", 52);
}

TEST(MiniccRuntime, MallocDistinct) {
  ExpectProgram(R"(
    int main() {
      char *a = malloc(100);
      char *b = malloc(100);
      if (a == 0 || b == 0) return 1;
      if (b >= a && b < a + 100) return 2;
      if (a >= b && a < b + 100) return 2;
      memset(a, 1, 100);
      memset(b, 2, 100);
      return a[50] * 10 + b[50];  /* 12 */
    }
  )", 12);
}

TEST(MiniccRuntime, StringFunctions) {
  ExpectProgram(R"(
    int main() {
      char buf[32];
      strcpy(buf, "soft");
      if (strcmp(buf, "soft") != 0) return 1;
      if (strcmp("abc", "abd") >= 0) return 2;
      if (strncmp("abcdef", "abcxyz", 3) != 0) return 3;
      if (memcmp("aaa", "aab", 3) >= 0) return 4;
      return strlen(buf);
    }
  )", 4);
}

TEST(MiniccRuntime, Rand) {
  ExpectProgram(R"(
    int main() {
      srand(12345);
      int a = rand();
      int b = rand();
      if (a == b) return 1;
      if (a < 0 || b < 0) return 2;
      srand(12345);
      if (rand() != a) return 3;
      return 0;
    }
  )", 0);
}

TEST(MiniccRuntime, Atoi) {
  ExpectProgram(R"(
    int main() { return atoi("  -321") + atoi("+400") + atoi("21x"); }
  )", 100);
}

TEST(MiniccProject, MultiFileCompilation) {
  std::vector<minicc::SourceFile> files = {
      {"math.mc", "int triple(int x) { return x * 3; }\n"},
      {"main.mc", "int triple(int x);\nint main() { return triple(14); }\n"},
  };
  auto img = minicc::CompileMiniCProject(files);
  ASSERT_TRUE(img.ok()) << img.error().ToString();
  vm::Machine machine;
  machine.LoadImage(*img);
  const vm::RunResult run = machine.Run(1'000'000);
  ASSERT_EQ(run.reason, vm::StopReason::kHalted);
  EXPECT_EQ(run.exit_code, 42);
}

TEST(MiniccProject, ErrorsMapBackToTheRightFile) {
  std::vector<minicc::SourceFile> files = {
      {"ok.mc", "int fine() { return 1; }\n\n\n"},
      {"bad.mc", "int main() {\n  return nope;\n}\n"},
  };
  auto img = minicc::CompileMiniCProject(files);
  ASSERT_FALSE(img.ok());
  EXPECT_EQ(img.error().file, "bad.mc");
  EXPECT_EQ(img.error().line, 2);
  EXPECT_NE(img.error().message.find("unknown identifier"), std::string::npos);
}

TEST(MiniccProject, DuplicateAcrossFilesAttributed) {
  std::vector<minicc::SourceFile> files = {
      {"a.mc", "int f() { return 1; }\n"},
      {"b.mc", "int f() { return 2; }\nint main() { return f(); }\n"},
  };
  auto img = minicc::CompileMiniCProject(files);
  ASSERT_FALSE(img.ok());
  EXPECT_EQ(img.error().file, "b.mc");
  EXPECT_EQ(img.error().line, 1);
  EXPECT_NE(img.error().message.find("redefined"), std::string::npos);
}

TEST(MiniccErrors, UndefinedVariable) {
  auto img = minicc::CompileMiniC("int main() { return nope; }");
  ASSERT_FALSE(img.ok());
  EXPECT_NE(img.error().message.find("unknown identifier"), std::string::npos);
}

TEST(MiniccErrors, DuplicateFunction) {
  auto img = minicc::CompileMiniC("int f() { return 1; } int f() { return 2; } int main() { return 0; }");
  ASSERT_FALSE(img.ok());
  EXPECT_NE(img.error().message.find("redefined"), std::string::npos);
}

TEST(MiniccErrors, NoMain) {
  auto img = minicc::CompileMiniC("int f() { return 1; }");
  ASSERT_FALSE(img.ok());
  EXPECT_NE(img.error().message.find("main"), std::string::npos);
}

TEST(MiniccErrors, SyntaxError) {
  auto img = minicc::CompileMiniC("int main() { return 1 + ; }");
  ASSERT_FALSE(img.ok());
  EXPECT_GT(img.error().line, 0);
}

TEST(MiniccErrors, TooManyArgs) {
  auto img = minicc::CompileMiniC(
      "int f(int a, int b, int c, int d, int e, int g, int h) { return 0; }\n"
      "int main() { return 0; }");
  ASSERT_FALSE(img.ok());
}

TEST(MiniccErrors, WrongArgCount) {
  auto img = minicc::CompileMiniC(
      "int f(int a) { return a; } int main() { return f(1, 2); }");
  ASSERT_FALSE(img.ok());
  EXPECT_NE(img.error().message.find("arguments"), std::string::npos);
}

TEST(MiniccErrors, BreakOutsideLoop) {
  auto img = minicc::CompileMiniC("int main() { break; return 0; }");
  ASSERT_FALSE(img.ok());
}

TEST(MiniccSymbols, FunctionSymbolsEmitted) {
  auto img = minicc::CompileMiniC(R"(
    int helper(int x) { return x * 2; }
    int main() { return helper(21); }
  )");
  ASSERT_TRUE(img.ok()) << img.error().ToString();
  const image::Symbol* helper = img->FindSymbol("helper");
  const image::Symbol* main_sym = img->FindSymbol("main");
  ASSERT_NE(helper, nullptr);
  ASSERT_NE(main_sym, nullptr);
  EXPECT_EQ(helper->kind, image::SymbolKind::kFunction);
  EXPECT_GT(helper->size, 0u);
  // Symbol ranges must not overlap and must lie inside text.
  EXPECT_TRUE(img->ContainsText(helper->addr));
  EXPECT_TRUE(img->ContainsText(main_sym->addr));
  // FunctionAt must resolve interior addresses.
  EXPECT_EQ(img->FunctionAt(helper->addr + 4), helper);
}


TEST(MiniccFolding, FoldedCodeIsSmallerAndEquivalent) {
  const char* source = R"(
    int main() {
      int x = (3 + 4) * (10 - 2) / 2;          /* 28 */
      int y = (1 << 10) | (255 & 0x0f0);       /* 1264 */
      int z = -(-5) + ~0 + (7 > 3 ? 2 : 9);    /* 6 */
      int w = (int)(char)0x1ff;                /* 255 */
      return (x + y + z + w) % 251;
    }
  )";
  minicc::CompileOptions folded;
  minicc::CompileOptions plain;
  plain.codegen.fold_constants = false;
  auto img_folded = minicc::CompileMiniC(source, "<f>", folded);
  auto img_plain = minicc::CompileMiniC(source, "<p>", plain);
  ASSERT_TRUE(img_folded.ok());
  ASSERT_TRUE(img_plain.ok());
  // Folding must shrink main() without changing behaviour.
  const image::Symbol* main_folded = img_folded->FindSymbol("main");
  const image::Symbol* main_plain = img_plain->FindSymbol("main");
  ASSERT_NE(main_folded, nullptr);
  ASSERT_NE(main_plain, nullptr);
  EXPECT_LT(main_folded->size, main_plain->size);
  for (const auto& img : {*img_folded, *img_plain}) {
    vm::Machine machine;
    machine.LoadImage(img);
    const vm::RunResult run = machine.Run(1'000'000);
    ASSERT_EQ(run.reason, vm::StopReason::kHalted);
    EXPECT_EQ(run.exit_code, (28 + 1264 + 6 + 255) % 251);
  }
}

TEST(MiniccFolding, DivisionByConstantZeroStillFaults) {
  // 1/0 must NOT be folded away or turned into a compile error — the
  // runtime fault is the defined behaviour.
  const auto out = CompileAndRun("int main() { return 1 / 0; }");
  EXPECT_EQ(out.result.reason, vm::StopReason::kFault);
  EXPECT_NE(out.result.fault_message.find("division"), std::string::npos);
}

TEST(MiniccFolding, IntMinDivMinusOneFoldsToWrap) {
  ExpectProgram(
      "int main() { return ((int)0x80000000 / -1) == (int)0x80000000 ? 1 : 0; }",
      1);
}

TEST(MiniccSemantics, FaultOnNullDeref) {
  const auto out = CompileAndRun("int main() { int *p = 0; return *p; }");
  EXPECT_EQ(out.result.reason, vm::StopReason::kFault);
  EXPECT_NE(out.result.fault_message.find("null-guard"), std::string::npos);
}

TEST(MiniccSemantics, FaultOnDivByZero) {
  const auto out = CompileAndRun("int zero = 0; int main() { return 5 / zero; }");
  EXPECT_EQ(out.result.reason, vm::StopReason::kFault);
  EXPECT_NE(out.result.fault_message.find("division"), std::string::npos);
}

}  // namespace
}  // namespace sc
