// Speculative prefetch tests: batch payload framing, hint packing, the
// kOff byte-identical-wire property, execution equivalence with batching
// on (including under an unreliable transport), and staging-buffer
// bounds/eviction behaviour.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "minicc/compiler.h"
#include "softcache/mc.h"
#include "softcache/protocol.h"
#include "softcache/system.h"
#include "tests/testing.h"

namespace sc {
namespace {

using softcache::BatchChunkView;
using softcache::MsgType;
using softcache::PrefetchHints;
using softcache::PrefetchPolicy;
using softcache::SoftCacheConfig;
using softcache::SoftCacheSystem;
using softcache::Style;

image::Image Compile(std::string_view source) {
  auto img = minicc::CompileMiniC(source);
  SC_CHECK(img.ok()) << img.error().ToString();
  return std::move(*img);
}

SoftCacheConfig PrefetchConfig(Style style, PrefetchPolicy policy,
                               uint32_t tcache_bytes = 24 * 1024) {
  SoftCacheConfig config;
  config.style = style;
  config.tcache_bytes = tcache_bytes;
  config.prefetch.policy = policy;
  return config;
}

// A cached run plus the image it executes (SoftCacheSystem keeps a
// reference to the image, so the two must live together).
struct EquivalentRun {
  std::unique_ptr<image::Image> image;
  std::unique_ptr<SoftCacheSystem> system;
  const softcache::SoftCacheStats& stats() const { return system->stats(); }
};

// Runs `source` natively and under `config`; requires identical exit codes
// and output, and intact CC invariants (which include the staging-buffer
// bookkeeping) afterwards. Returns the run for stats assertions.
EquivalentRun ExpectEquivalent(std::string_view source,
                               const SoftCacheConfig& config,
                               const std::string& input = "",
                               uint64_t max_instr = 100'000'000) {
  EquivalentRun run;
  run.image = std::make_unique<image::Image>(Compile(source));

  std::string native_out;
  const vm::RunResult native =
      softcache::RunNative(*run.image, input, &native_out, max_instr);
  EXPECT_EQ(native.reason, vm::StopReason::kHalted)
      << "native run failed: " << native.fault_message;

  run.system = std::make_unique<SoftCacheSystem>(*run.image, config);
  run.system->SetInput(input);
  const vm::RunResult cached = run.system->Run(max_instr);
  EXPECT_EQ(cached.reason, vm::StopReason::kHalted)
      << "softcache fault: " << cached.fault_message;
  EXPECT_EQ(cached.exit_code, native.exit_code);
  EXPECT_EQ(run.system->OutputString(), native_out);
  run.system->cc().CheckInvariants();
  return run;
}

constexpr const char* kCallLoopProgram = R"(
  int leaf(int x) { return x * 3 + 1; }
  int mid(int x) { return leaf(x) + leaf(x + 1); }
  int top(int x) { return mid(x) + mid(x + 2); }
  int main() {
    int sum = 0;
    for (int i = 0; i < 300; i++) sum += top(i) % 13;
    return sum % 251;
  }
)";

constexpr const char* kFibProgram = R"(
  int fib(int n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }
  int main() { return fib(15); }
)";

// --- Batch payload framing ---

TEST(BatchPayload, RoundTripsMultipleChunks) {
  std::vector<uint8_t> payload;
  const uint32_t words_a[] = {0x11111111u, 0x22222222u, 0x33333333u};
  const uint32_t words_b[] = {0xdeadbeefu};
  softcache::AppendBatchChunk(&payload, 0x1000, 0xa5a5a5a5u, 0x2000, words_a, 3);
  softcache::AppendBatchChunk(&payload, 0x3000, 0x5a5a5a5au, 0x4000, words_b, 1);
  softcache::AppendBatchChunk(&payload, 0x5000, 0, 0, nullptr, 0);

  auto parsed = softcache::ParseBatchPayload(payload, 3);
  ASSERT_TRUE(parsed.ok()) << parsed.error().ToString();
  ASSERT_EQ(parsed->size(), 3u);
  const BatchChunkView& a = (*parsed)[0];
  EXPECT_EQ(a.addr, 0x1000u);
  EXPECT_EQ(a.aux, 0xa5a5a5a5u);
  EXPECT_EQ(a.extra, 0x2000u);
  ASSERT_EQ(a.nwords, 3u);
  uint32_t word = 0;
  std::memcpy(&word, a.words + 4, 4);
  EXPECT_EQ(word, 0x22222222u);
  EXPECT_EQ((*parsed)[1].nwords, 1u);
  EXPECT_EQ((*parsed)[2].nwords, 0u);
  EXPECT_EQ((*parsed)[2].addr, 0x5000u);
}

TEST(BatchPayload, RejectsMalformedPayloads) {
  std::vector<uint8_t> payload;
  const uint32_t words[] = {1, 2};
  softcache::AppendBatchChunk(&payload, 0x1000, 0, 0, words, 2);

  // Count demands more records than the payload holds.
  EXPECT_FALSE(softcache::ParseBatchPayload(payload, 2).ok());

  // Truncated sub-chunk header.
  std::vector<uint8_t> shorty(payload.begin(), payload.begin() + 8);
  EXPECT_FALSE(softcache::ParseBatchPayload(shorty, 1).ok());

  // nwords claims more words than remain (overflow-safe check).
  std::vector<uint8_t> lying = payload;
  lying[12] = 0xff;
  lying[13] = 0xff;
  lying[14] = 0xff;
  lying[15] = 0xff;
  EXPECT_FALSE(softcache::ParseBatchPayload(lying, 1).ok());

  // Trailing bytes after the declared records.
  std::vector<uint8_t> trailing = payload;
  trailing.push_back(0);
  EXPECT_FALSE(softcache::ParseBatchPayload(trailing, 1).ok());

  // Empty payload with zero count is fine.
  EXPECT_TRUE(softcache::ParseBatchPayload({}, 0).ok());
}

TEST(BatchPayload, HintsPackRoundTripAndClamp) {
  PrefetchHints h;
  h.policy = 2;
  h.depth = 3;
  h.max_chunks = 17;
  h.byte_budget = 4096;
  const PrefetchHints back =
      softcache::UnpackPrefetchHints(softcache::PackPrefetchHints(h));
  EXPECT_EQ(back.policy, 2u);
  EXPECT_EQ(back.depth, 3u);
  EXPECT_EQ(back.max_chunks, 17u);
  EXPECT_EQ(back.byte_budget, 4096u);

  // Oversized fields clamp to their field widths instead of corrupting
  // neighbours.
  PrefetchHints big;
  big.policy = 99;
  big.depth = 77;
  big.max_chunks = 100'000;
  big.byte_budget = 1 << 20;
  const PrefetchHints clamped =
      softcache::UnpackPrefetchHints(softcache::PackPrefetchHints(big));
  EXPECT_EQ(clamped.policy, 15u);
  EXPECT_EQ(clamped.depth, 15u);
  EXPECT_EQ(clamped.max_chunks, 255u);
  EXPECT_EQ(clamped.byte_budget, 0xffffu);

  // Policy off with no budgets packs to the seed protocol's zero.
  EXPECT_EQ(softcache::PackPrefetchHints(PrefetchHints{}), 0u);
}

// --- kOff wire-compatibility property ---

// Golden re-encoders, written out longhand from the protocol spec (PROTOCOL
// section "frame formats") so a serializer regression can't hide behind its
// own Parse.
void GoldenPutU32(std::vector<uint8_t>& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v >> 16));
  out.push_back(static_cast<uint8_t>(v >> 24));
}

uint32_t GoldenFnv(const uint8_t* data, size_t len, uint32_t basis) {
  uint32_t hash = basis;
  for (size_t i = 0; i < len; ++i) {
    hash ^= data[i];
    hash *= 16777619u;
  }
  return hash;
}

std::vector<uint8_t> GoldenRequest(uint32_t type, uint32_t seq, uint32_t addr,
                                   uint32_t length,
                                   const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> out;
  GoldenPutU32(out, 0x53434d43u);  // "SCMC"
  GoldenPutU32(out, type);
  GoldenPutU32(out, seq);
  GoldenPutU32(out, addr);
  GoldenPutU32(out, length);
  GoldenPutU32(out, GoldenFnv(payload.data(), payload.size(),
                              GoldenFnv(out.data(), 20, 2166136261u)));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::vector<uint8_t> GoldenReply(uint32_t type, uint32_t seq, uint32_t addr,
                                 uint32_t aux, uint32_t extra,
                                 const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> out;
  GoldenPutU32(out, 0x53434d43u);
  GoldenPutU32(out, type);
  GoldenPutU32(out, seq);
  GoldenPutU32(out, addr);
  GoldenPutU32(out, aux);
  GoldenPutU32(out, static_cast<uint32_t>(payload.size()));
  GoldenPutU32(out, extra);
  GoldenPutU32(out, GoldenFnv(out.data(), 28, 2166136261u));
  out.insert(out.end(), payload.begin(), payload.end());
  GoldenPutU32(out, GoldenFnv(payload.data(), payload.size(), 2166136261u));
  return out;
}

// With prefetch off, every frame that crosses the wire must be exactly what
// the seed protocol would have produced: chunk requests carry length == 0,
// no kChunkBatchReply ever appears, and re-encoding each parsed frame with
// the golden encoders reproduces the tapped bytes bit for bit.
TEST(PrefetchOffProperty, WireTrafficIsByteIdenticalToSeedProtocol) {
  const image::Image img = Compile(kCallLoopProgram);
  SoftCacheConfig config = PrefetchConfig(Style::kSparc, PrefetchPolicy::kOff);

  SoftCacheSystem system(img, config);
  uint64_t frames = 0;
  uint64_t chunk_requests = 0;
  system.mc().set_frame_tap([&](const std::vector<uint8_t>& request_bytes,
                                const std::vector<uint8_t>& reply_bytes) {
    ++frames;
    auto request = softcache::Request::Parse(request_bytes);
    ASSERT_TRUE(request.ok()) << request.error().ToString();
    if (request->type == MsgType::kChunkRequest) {
      ++chunk_requests;
      // The seed protocol leaves `length` zero on chunk requests; kOff must
      // not smuggle hints into it.
      EXPECT_EQ(request->length, 0u);
    }
    // A crash-free run stays in boot epoch 0, whose packed type word equals
    // the raw type — the session layer must be invisible on the wire.
    EXPECT_EQ(request->epoch, 0u);
    EXPECT_EQ(GoldenRequest(static_cast<uint32_t>(request->type), request->seq,
                            request->addr, request->length, request->payload),
              request_bytes);

    auto reply = softcache::Reply::Parse(reply_bytes);
    ASSERT_TRUE(reply.ok()) << reply.error().ToString();
    EXPECT_EQ(reply->epoch, 0u);
    EXPECT_NE(reply->type, MsgType::kChunkBatchReply)
        << "kOff produced a batched reply";
    EXPECT_EQ(GoldenReply(static_cast<uint32_t>(reply->type), reply->seq,
                          reply->addr, reply->aux, reply->extra,
                          reply->payload),
              reply_bytes);
  });

  const vm::RunResult result = system.Run(100'000'000);
  EXPECT_EQ(result.reason, vm::StopReason::kHalted)
      << result.fault_message;
  EXPECT_GT(frames, 0u);
  EXPECT_GT(chunk_requests, 0u);

  // kOff does zero speculative work on either side of the link.
  const softcache::PrefetchStats& ps = system.stats().prefetch;
  EXPECT_EQ(ps.batches, 0u);
  EXPECT_EQ(ps.chunks_prefetched, 0u);
  EXPECT_EQ(ps.staged, 0u);
  EXPECT_EQ(ps.hits, 0u);
  EXPECT_EQ(system.mc().batches_served(), 0u);
}

// The epoch stamp rides the upper 12 bits of the type word and the client id
// the 12 below it (PROTOCOL section "sessions"): re-encode stamped frames
// longhand and require bit-equality, and show that epoch 0 degenerates to the
// seed encoding.
TEST(PrefetchOffProperty, EpochStampMatchesGoldenTypeWordPacking) {
  softcache::Request request;
  request.type = MsgType::kDataWriteback;
  request.seq = 77;
  request.addr = 0x2000;
  request.length = 4;
  request.payload = {9, 8, 7, 6};
  request.epoch = 0x0102;
  EXPECT_EQ(request.Serialize(),
            GoldenRequest(static_cast<uint32_t>(MsgType::kDataWriteback) |
                              (0x0102u << softcache::kEpochShift),
                          77, 0x2000, 4, request.payload));
  auto parsed = softcache::Request::Parse(request.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->type, MsgType::kDataWriteback);
  EXPECT_EQ(parsed->epoch, 0x0102u);

  softcache::Reply reply;
  reply.type = MsgType::kWritebackAck;
  reply.seq = 77;
  reply.addr = 0x2000;
  reply.epoch = 0x0102;
  EXPECT_EQ(reply.Serialize(),
            GoldenReply(static_cast<uint32_t>(MsgType::kWritebackAck) |
                            (0x0102u << softcache::kEpochShift),
                        77, 0x2000, 0, 0, {}));
  auto parsed_reply = softcache::Reply::Parse(reply.Serialize());
  ASSERT_TRUE(parsed_reply.ok());
  EXPECT_EQ(parsed_reply->type, MsgType::kWritebackAck);
  EXPECT_EQ(parsed_reply->epoch, 0x0102u);

  // Epoch 0 packs to the bare type: byte-identical to the seed protocol.
  request.epoch = 0;
  EXPECT_EQ(request.Serialize(),
            GoldenRequest(static_cast<uint32_t>(MsgType::kDataWriteback), 77,
                          0x2000, 4, request.payload));
}

// --- Execution equivalence with batching on ---

TEST(PrefetchEquivalence, SparcNextN) {
  const EquivalentRun run = ExpectEquivalent(
      kCallLoopProgram, PrefetchConfig(Style::kSparc, PrefetchPolicy::kNextN));
  const softcache::PrefetchStats& ps = run.stats().prefetch;
  EXPECT_GT(ps.batches, 0u);
  EXPECT_GT(ps.chunks_prefetched, 0u);
  EXPECT_GT(ps.hits, 0u);
}

TEST(PrefetchEquivalence, SparcTemperature) {
  const EquivalentRun run = ExpectEquivalent(
      kFibProgram, PrefetchConfig(Style::kSparc, PrefetchPolicy::kTemperature));
  EXPECT_GT(run.stats().prefetch.batches, 0u);
  // The MC learned demand counts for the chunks the client asked for.
  softcache::MemoryController& mc = run.system->mc();
  EXPECT_GT(mc.Temperature(mc.image().entry), 0u);
}

TEST(PrefetchEquivalence, ArmProcedureChunks) {
  const EquivalentRun run = ExpectEquivalent(
      kCallLoopProgram, PrefetchConfig(Style::kArm, PrefetchPolicy::kNextN));
  EXPECT_GT(run.stats().prefetch.batches, 0u);
}

TEST(PrefetchEquivalence, PrefetchSavesRoundTrips) {
  const image::Image img = Compile(kCallLoopProgram);

  SoftCacheConfig off = PrefetchConfig(Style::kSparc, PrefetchPolicy::kOff);
  SoftCacheSystem sys_off(img, off);
  ASSERT_EQ(sys_off.Run(100'000'000).reason, vm::StopReason::kHalted);

  SoftCacheConfig on = PrefetchConfig(Style::kSparc, PrefetchPolicy::kNextN);
  SoftCacheSystem sys_on(img, on);
  ASSERT_EQ(sys_on.Run(100'000'000).reason, vm::StopReason::kHalted);

  EXPECT_EQ(sys_on.OutputString(), sys_off.OutputString());
  // Every staging hit is a round trip the kOff run had to pay for.
  EXPECT_LT(sys_on.stats().net.requests, sys_off.stats().net.requests);
}

// --- Batched replies under an unreliable transport ---

TEST(PrefetchFaulty, BatchedRepliesSurviveDropCorruptDuplicate) {
  SoftCacheConfig config =
      PrefetchConfig(Style::kSparc, PrefetchPolicy::kNextN);
  config.fault.seed = 42;
  config.fault.drop = 0.2;
  config.fault.corrupt = 0.15;
  config.fault.duplicate = 0.15;

  const EquivalentRun run = ExpectEquivalent(kCallLoopProgram, config);
  // The run recovered through retransmission, and batching stayed active
  // through the faults.
  EXPECT_GT(run.stats().net.retries, 0u);
  EXPECT_GT(run.stats().prefetch.batches, 0u);
}

TEST(PrefetchFaulty, TemperatureUnderFaultsMatchesNative) {
  SoftCacheConfig config =
      PrefetchConfig(Style::kSparc, PrefetchPolicy::kTemperature);
  config.fault.seed = 7;
  config.fault.drop = 0.08;
  config.fault.corrupt = 0.04;
  ExpectEquivalent(kFibProgram, config);
}

// --- Staging buffer bounds ---

TEST(PrefetchStaging, TinyBufferEvictsAndStaysCorrect) {
  SoftCacheConfig config =
      PrefetchConfig(Style::kSparc, PrefetchPolicy::kNextN);
  // Room for roughly one small chunk: later prefetches must evict or drop,
  // never overflow (CheckInvariants enforces the byte bound).
  config.prefetch.staging_bytes = 96;
  config.prefetch.max_chunks = 8;

  const EquivalentRun run = ExpectEquivalent(kCallLoopProgram, config);
  const softcache::PrefetchStats& ps = run.stats().prefetch;
  EXPECT_GT(ps.staged, 0u);
  EXPECT_GT(ps.evictions + ps.dropped, 0u);
}

TEST(PrefetchStaging, EvictionPressureUnderSmallTcache) {
  // A tcache holding only half the program's peak footprint forces block
  // eviction and re-fetch; staged chunks must never shadow stale text
  // (OnIcacheInvalidate drops overlapping stages).
  const image::Image img = Compile(kCallLoopProgram);
  SoftCacheConfig probe =
      PrefetchConfig(Style::kSparc, PrefetchPolicy::kNextN);
  uint64_t peak = 0;
  {
    SoftCacheSystem system(img, probe);
    ASSERT_EQ(system.Run(100'000'000).reason, vm::StopReason::kHalted);
    peak = system.stats().tcache_bytes_used_peak;
    ASSERT_GT(peak, 0u);
  }
  SoftCacheConfig tiny = probe;
  tiny.tcache_bytes =
      std::max(static_cast<uint32_t>(peak / 2) & ~3u, 256u);
  const EquivalentRun run = ExpectEquivalent(kCallLoopProgram, tiny);
  EXPECT_GT(run.stats().evictions + run.stats().flushes, 0u);
}

// --- Policy divergence ---

// kTemperature must be able to make a *different* admission decision than
// kNextN, not just reorder a set the budget would have admitted anyway.
// Constructed at the protocol level so the divergence is provable: probe the
// full candidate set, find a deep chunk the BFS-order greedy pass drops under
// a binding byte budget, warm exactly that chunk with demand requests, and
// show the temperature ranking admits it where next-N provably cannot
// (admitting any earlier candidate leaves less than the hot chunk's cost).
TEST(PrefetchPolicyDivergence, WarmDeepChunkDisplacesColdFallthrough) {
  const image::Image img = Compile(kCallLoopProgram);
  softcache::MemoryController mc(img, Style::kSparc, 64);

  struct BatchProbe {
    std::vector<uint32_t> addrs;   // prefetched chunk addrs, primary excluded
    std::vector<uint32_t> costs;   // wire cost of each, header + words
  };
  const auto probe = [&](PrefetchPolicy policy, uint32_t depth,
                         uint32_t max_chunks, uint32_t byte_budget) {
    softcache::Request request;
    request.type = MsgType::kChunkRequest;
    request.addr = img.entry;
    request.length = softcache::PackPrefetchHints(
        PrefetchHints{static_cast<uint32_t>(policy), depth, max_chunks,
                      byte_budget});
    auto reply = softcache::Reply::Parse(mc.Handle(request.Serialize()));
    SC_CHECK(reply.ok()) << reply.error().ToString();
    SC_CHECK(reply->type == MsgType::kChunkBatchReply);
    auto chunks = softcache::ParseBatchPayload(reply->payload, reply->aux);
    SC_CHECK(chunks.ok()) << chunks.error().ToString();
    BatchProbe result;
    for (size_t i = 1; i < chunks->size(); ++i) {  // record 0 is the primary
      result.addrs.push_back((*chunks)[i].addr);
      result.costs.push_back(softcache::kBatchChunkHeaderBytes +
                             (*chunks)[i].nwords * 4);
    }
    return result;
  };

  // Full candidate set in BFS order (budget far above anything admissible).
  const BatchProbe all = probe(PrefetchPolicy::kNextN, 4, 255, 0xffff);
  ASSERT_GE(all.addrs.size(), 2u) << "program too small to rank";

  // Pick the deepest candidate with some cheaper candidate before it in BFS
  // order, and set the budget to exactly its cost. That budget is binding by
  // construction: the greedy pass admits the cheaper earlier chunk first,
  // after which less than the deep chunk's cost remains.
  size_t hot_index = 0;
  uint32_t min_prefix_cost = all.costs[0];
  std::vector<uint32_t> min_cost_before(all.costs.size(), 0);
  for (size_t i = 1; i < all.costs.size(); ++i) {
    min_cost_before[i] = min_prefix_cost;
    min_prefix_cost = std::min(min_prefix_cost, all.costs[i]);
    if (min_cost_before[i] <= all.costs[i]) hot_index = i;
  }
  ASSERT_GT(hot_index, 0u) << "candidate costs strictly decreasing; no "
                              "binding-budget victim exists in this program";
  const uint32_t hot = all.addrs[hot_index];
  const uint32_t budget = all.costs[hot_index];

  const BatchProbe next_n = probe(PrefetchPolicy::kNextN, 4, 255, budget);
  ASSERT_FALSE(next_n.addrs.empty());
  ASSERT_EQ(std::count(next_n.addrs.begin(), next_n.addrs.end(), hot), 0)
      << "budget not binding: next-N admitted the deep chunk anyway";

  // Warm exactly the dropped chunk with plain demand requests (seed-protocol
  // frames, no hints): every other candidate stays at temperature zero.
  for (int i = 0; i < 8; ++i) {
    softcache::Request demand;
    demand.type = MsgType::kChunkRequest;
    demand.addr = hot;
    auto reply = softcache::Reply::Parse(mc.Handle(demand.Serialize()));
    ASSERT_TRUE(reply.ok());
    ASSERT_EQ(reply->type, MsgType::kChunkReply);
  }
  EXPECT_GE(mc.Temperature(hot), 8u);

  // Same binding budget, temperature ranking: the warmed chunk sorts first
  // and consumes the whole budget — a different set, containing the chunk
  // next-N provably dropped.
  const BatchProbe temp = probe(PrefetchPolicy::kTemperature, 4, 255, budget);
  EXPECT_EQ(std::count(temp.addrs.begin(), temp.addrs.end(), hot), 1)
      << "temperature ranking did not admit the hot chunk";
  EXPECT_NE(temp.addrs, next_n.addrs);
}

}  // namespace
}  // namespace sc
