// Channel cost-model and accounting tests.
#include <gtest/gtest.h>

#include "net/channel.h"

namespace sc::net {
namespace {

TEST(Channel, CycleCostArithmetic) {
  ChannelConfig config;
  config.clock_hz = 200'000'000;
  config.bits_per_second = 10'000'000;  // 20 cycles per bit, 160 per byte
  config.latency_cycles = 2'000;
  Channel channel(config);
  EXPECT_EQ(channel.CyclesFor(0), 2'000u);
  EXPECT_EQ(channel.CyclesFor(1), 2'000u + 160);
  EXPECT_EQ(channel.CyclesFor(100), 2'000u + 16'000);
}

TEST(Channel, CostRoundsUp) {
  ChannelConfig config;
  config.clock_hz = 3;  // 24 clock-cycles per 8-bit byte / 7 bps -> ceil
  config.bits_per_second = 7;
  config.latency_cycles = 0;
  Channel channel(config);
  // 1 byte = 8 bits; 8 * 3 / 7 = 3.43 -> 4 cycles.
  EXPECT_EQ(channel.CyclesFor(1), 4u);
}

TEST(Channel, HugeTransferDoesNotOverflowTheIntermediateProduct) {
  // With the default 200 MHz clock and 1 Mbps link, bytes * 8 * clock_hz
  // crosses 2^64 at ~11.5 GB. The old uint64_t arithmetic wrapped there and
  // returned a tiny cost; the 128-bit intermediate must keep scaling.
  ChannelConfig config;
  config.clock_hz = 200'000'000;
  config.bits_per_second = 1'000'000;
  config.latency_cycles = 0;
  Channel channel(config);
  // 1600 cycles/byte, exact at every size below.
  const uint64_t near_edge = (1ull << 60) / (8 * config.clock_hz) * 8;
  EXPECT_EQ(channel.CyclesFor(near_edge), near_edge * 1600);
  const uint64_t past_edge = 16ull << 30;  // 16 GB: over the uint64 edge
  EXPECT_EQ(channel.CyclesFor(past_edge), past_edge * 1600);
  // Monotonic across the boundary — the wrapped version collapsed here.
  EXPECT_GT(channel.CyclesFor(past_edge), channel.CyclesFor(near_edge));
}

TEST(Channel, FasterLinkCostsFewerCycles) {
  ChannelConfig slow;
  slow.bits_per_second = 1'000'000;
  ChannelConfig fast;
  fast.bits_per_second = 100'000'000;
  EXPECT_GT(Channel(slow).CyclesFor(1000), Channel(fast).CyclesFor(1000));
}

TEST(Channel, DirectionalAccounting) {
  Channel channel;
  channel.SendToServer(24);
  channel.SendToServer(24);
  channel.SendToClient(100);
  const ChannelStats& stats = channel.stats();
  EXPECT_EQ(stats.messages_to_server, 2u);
  EXPECT_EQ(stats.messages_to_client, 1u);
  EXPECT_EQ(stats.bytes_to_server, 48u);
  EXPECT_EQ(stats.bytes_to_client, 100u);
  EXPECT_EQ(stats.total_bytes(), 148u);
  EXPECT_EQ(stats.total_messages(), 3u);
  EXPECT_EQ(stats.total_cycles,
            channel.CyclesFor(24) * 2 + channel.CyclesFor(100));
}

TEST(Channel, ResetClearsStats) {
  Channel channel;
  channel.SendToServer(10);
  channel.ResetStats();
  EXPECT_EQ(channel.stats().total_messages(), 0u);
  EXPECT_EQ(channel.stats().total_cycles, 0u);
}

TEST(Channel, SendReturnsChargedCycles) {
  Channel channel;
  const uint64_t cycles = channel.SendToServer(64);
  EXPECT_EQ(cycles, channel.CyclesFor(64));
}

}  // namespace
}  // namespace sc::net
