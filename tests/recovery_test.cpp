// Crash-recovery tests: the MC crash model (stable image + flush barriers +
// epoch bump), the seeded crash injector, the epoch-fenced Session (journal
// replay, durable-ack synthesis, bounded recovery), and end-to-end bit
// identity of every workload under crash schedules — including crashes that
// land mid-recovery and during batched prefetch replies.
//
// The e2e suites honour SOFTCACHE_CRASH_SEED (CI soaks several seeds with
// --gtest_filter='CrashRecovery*'); everything else is seed-independent.
#include <gtest/gtest.h>

#include <cstdlib>
#include <deque>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "dcache/dcache.h"
#include "minicc/compiler.h"
#include "net/transport.h"
#include "softcache/mc.h"
#include "softcache/protocol.h"
#include "softcache/reliable.h"
#include "softcache/session.h"
#include "softcache/system.h"
#include "vm/machine.h"
#include "workloads/workloads.h"

namespace sc {
namespace {

using softcache::kMcWriteFlushIntervalOps;
using softcache::LinkStats;
using softcache::MemoryController;
using softcache::MsgType;
using softcache::Reply;
using softcache::Request;
using softcache::RetryConfig;
using softcache::Session;
using softcache::SessionStats;

uint64_t EnvSeed() {
  const char* s = std::getenv("SOFTCACHE_CRASH_SEED");
  return s != nullptr ? std::strtoull(s, nullptr, 0) : 7;
}

image::Image ArrayImage() {
  auto img = minicc::CompileMiniC(R"(
    int a[1024];
    int main() { return 0; }
  )");
  SC_CHECK(img.ok());
  return std::move(*img);
}

Request Writeback(uint32_t addr, uint8_t marker, uint32_t epoch = 0) {
  Request write;
  write.type = MsgType::kDataWriteback;
  write.addr = addr;
  write.length = 4;
  write.payload = {marker, marker, marker, marker};
  write.epoch = epoch;
  return write;
}

Reply MustParse(const std::vector<uint8_t>& bytes) {
  auto reply = Reply::Parse(bytes);
  SC_CHECK(reply.ok()) << reply.error().ToString();
  return std::move(*reply);
}

// ---------------------------------------------------------------------------
// MC crash model: stable image, flush barriers, epoch, hello
// ---------------------------------------------------------------------------

TEST(CrashRecoveryMc, RestartDropsUnflushedWritesAndBumpsEpoch) {
  const image::Image img = ArrayImage();
  MemoryController mc(img, softcache::Style::kSparc, 64);
  const uint8_t original = mc.data()[0];

  Request write = Writeback(mc.DataBase(), 0xde);
  write.seq = 1;
  (void)mc.Handle(write.Serialize());
  EXPECT_EQ(mc.data()[0], 0xde);
  EXPECT_EQ(mc.applied_data_ops(), 1u);
  EXPECT_EQ(mc.stable_data_ops(), 0u);  // below the flush barrier

  mc.Restart();
  EXPECT_EQ(mc.epoch(), 1u);
  EXPECT_EQ(mc.restarts(), 1u);
  EXPECT_EQ(mc.data()[0], original);  // the unflushed write died with it
  EXPECT_EQ(mc.applied_data_ops(), 0u);
}

TEST(CrashRecoveryMc, FlushBarrierMakesWritesDurable) {
  const image::Image img = ArrayImage();
  MemoryController mc(img, softcache::Style::kSparc, 64);

  // Exactly one barrier's worth of writes: all flushed into the stable image.
  for (uint32_t i = 0; i < kMcWriteFlushIntervalOps; ++i) {
    Request write = Writeback(mc.DataBase() + i * 4, 0x40);
    write.seq = 100 + i;
    const Reply reply = MustParse(mc.Handle(write.Serialize()));
    ASSERT_EQ(reply.type, MsgType::kWritebackAck);
  }
  EXPECT_EQ(mc.applied_data_ops(), kMcWriteFlushIntervalOps);
  EXPECT_EQ(mc.stable_data_ops(), kMcWriteFlushIntervalOps);

  // Five more stay pending; a crash reverts exactly those five.
  for (uint32_t i = 0; i < 5; ++i) {
    Request write = Writeback(mc.DataBase() + i * 4, 0x77);
    write.seq = 200 + i;
    (void)mc.Handle(write.Serialize());
  }
  EXPECT_EQ(mc.data()[0], 0x77);
  mc.Restart();
  EXPECT_EQ(mc.data()[0], 0x40);  // flushed value, not the pending one
  EXPECT_EQ(mc.data()[5 * 4], 0x40);
  EXPECT_EQ(mc.applied_data_ops(), kMcWriteFlushIntervalOps);
  EXPECT_EQ(mc.stable_data_ops(), kMcWriteFlushIntervalOps);
}

TEST(CrashRecoveryMc, HelloReportsEpochAndStableWatermarks) {
  const image::Image img = ArrayImage();
  MemoryController mc(img, softcache::Style::kSparc, 64);

  Request hello;
  hello.type = MsgType::kHello;
  hello.seq = 1;
  Reply ack = MustParse(mc.Handle(hello.Serialize()));
  EXPECT_EQ(ack.type, MsgType::kHelloAck);
  EXPECT_EQ(ack.addr, 0u);   // epoch
  EXPECT_EQ(ack.aux, 0u);    // stable text ops
  EXPECT_EQ(ack.extra, 0u);  // stable data ops
  EXPECT_EQ(ack.epoch, 0u);

  for (uint32_t i = 0; i < kMcWriteFlushIntervalOps; ++i) {
    Request write = Writeback(mc.DataBase() + i * 4, 0x11);
    write.seq = 10 + i;
    (void)mc.Handle(write.Serialize());
  }
  mc.Restart();
  hello.seq = 2;
  hello.epoch = 0;  // hellos are served regardless of the stamped epoch
  ack = MustParse(mc.Handle(hello.Serialize()));
  EXPECT_EQ(ack.type, MsgType::kHelloAck);
  EXPECT_EQ(ack.addr, 1u);
  EXPECT_EQ(ack.extra, kMcWriteFlushIntervalOps);
  EXPECT_EQ(ack.epoch, 1u);
}

TEST(CrashRecoveryMc, RejectsStaleEpochWrites) {
  const image::Image img = ArrayImage();
  MemoryController mc(img, softcache::Style::kSparc, 64);
  mc.Restart();  // epoch 1

  Request write = Writeback(mc.DataBase(), 0xaa, /*epoch=*/0);
  write.seq = 9;
  const uint8_t before = mc.data()[0];
  const Reply reply = MustParse(mc.Handle(write.Serialize()));
  EXPECT_EQ(reply.type, MsgType::kError);
  EXPECT_EQ(reply.epoch, 1u);  // the rejection itself carries the live epoch
  EXPECT_EQ(mc.data()[0], before);
  EXPECT_EQ(mc.stale_epoch_rejects(), 1u);
  EXPECT_EQ(mc.applied_data_ops(), 0u);  // counters stay journal-aligned

  // Reads are idempotent and served regardless of the stamped epoch.
  Request fetch;
  fetch.type = MsgType::kChunkRequest;
  fetch.seq = 10;
  fetch.addr = img.entry;
  fetch.epoch = 0;
  const Reply chunk = MustParse(mc.Handle(fetch.Serialize()));
  EXPECT_EQ(chunk.type, MsgType::kChunkReply);
  EXPECT_EQ(chunk.epoch, 1u);
}

TEST(CrashRecoveryMc, ReplayCacheDropsStaleEpochEntries) {
  // Satellite (a): a replay-cache hit requires the entry's epoch to match.
  // A pre-crash write retransmitted after a restart must NOT be answered
  // from the cache (that would claim durability the crash revoked).
  const image::Image img = ArrayImage();
  MemoryController mc(img, softcache::Style::kSparc, 64);

  Request write = Writeback(mc.DataBase(), 0xde, /*epoch=*/0);
  write.seq = 500;
  const auto frame = write.Serialize();
  const auto first_bytes = mc.Handle(frame);
  EXPECT_EQ(MustParse(first_bytes).type, MsgType::kWritebackAck);
  EXPECT_EQ(mc.Handle(frame), first_bytes);  // retransmit: cached, bit for bit
  EXPECT_EQ(mc.replays_suppressed(), 1u);
  const uint64_t suppressed = mc.replays_suppressed();

  mc.Restart();
  const Reply after = MustParse(mc.Handle(frame));
  EXPECT_EQ(after.type, MsgType::kError);  // stale epoch, not a cached ack
  EXPECT_EQ(mc.replays_suppressed(), suppressed);

  // Same story in the new epoch: a fresh write replays only within epoch 1.
  Request fresh = Writeback(mc.DataBase(), 0x55, /*epoch=*/1);
  fresh.seq = 501;
  const auto fresh_frame = fresh.Serialize();
  EXPECT_EQ(MustParse(mc.Handle(fresh_frame)).type, MsgType::kWritebackAck);
  EXPECT_EQ(MustParse(mc.Handle(fresh_frame)).type, MsgType::kWritebackAck);
  EXPECT_EQ(mc.replays_suppressed(), suppressed + 1);
}

// ---------------------------------------------------------------------------
// Crash injector schedules
// ---------------------------------------------------------------------------

TEST(CrashRecoveryInjector, PeriodicScheduleCrashesEveryNth) {
  net::Channel channel;
  net::FaultConfig fault;
  fault.crash_period = 3;
  net::FaultyTransport transport(
      channel, [](const std::vector<uint8_t>& frame) { return frame; }, fault);
  uint64_t crashes = 0;
  transport.set_crash_handler([&crashes] { ++crashes; });

  const std::vector<uint8_t> frame(24, 0xab);
  for (int i = 0; i < 9; ++i) transport.Send(frame);
  EXPECT_EQ(crashes, 3u);  // arrivals 3, 6, 9
  EXPECT_EQ(transport.stats().server_crashes, 3u);

  // The triggering requests died with the server: only 6 replies emerge.
  std::vector<uint8_t> out;
  uint64_t cycles = 0;
  int delivered = 0;
  while (transport.Recv(&out, &cycles)) ++delivered;
  EXPECT_EQ(delivered, 6);
}

TEST(CrashRecoveryInjector, OneShotSchedulesFireOnce) {
  net::Channel channel;
  net::FaultConfig fault;
  fault.crash_after_requests = 5;
  net::FaultyTransport transport(
      channel, [](const std::vector<uint8_t>& frame) { return frame; }, fault);
  uint64_t crashes = 0;
  transport.set_crash_handler([&crashes] { ++crashes; });
  const std::vector<uint8_t> frame(24, 0xab);
  for (int i = 0; i < 10; ++i) transport.Send(frame);
  EXPECT_EQ(crashes, 1u);

  // crash_at_cycle fires once at the first arrival at/after the threshold.
  net::Channel channel2;
  net::FaultConfig fault2;
  fault2.crash_at_cycle = 100;
  net::FaultyTransport at_cycle(
      channel2, [](const std::vector<uint8_t>& f) { return f; }, fault2);
  uint64_t cycle_crashes = 0;
  at_cycle.set_crash_handler([&cycle_crashes] { ++cycle_crashes; });
  uint64_t now = 50;
  at_cycle.set_cycle_source(&now);
  at_cycle.Send(frame);
  EXPECT_EQ(cycle_crashes, 0u);
  now = 150;
  at_cycle.Send(frame);
  at_cycle.Send(frame);
  EXPECT_EQ(cycle_crashes, 1u);
}

TEST(CrashRecoveryInjector, SeededRateIsDeterministic) {
  const auto run = [](uint64_t seed) {
    net::Channel channel;
    net::FaultConfig fault;
    fault.seed = seed;
    fault.crash = 0.2;
    net::FaultyTransport transport(
        channel, [](const std::vector<uint8_t>& frame) { return frame; },
        fault);
    uint64_t crashes = 0;
    transport.set_crash_handler([&crashes] { ++crashes; });
    std::vector<uint8_t> frame(24);
    for (int i = 0; i < 200; ++i) {
      frame[0] = static_cast<uint8_t>(i);
      transport.Send(frame);
    }
    return crashes;
  };
  const uint64_t a = run(42);
  EXPECT_EQ(a, run(42));
  EXPECT_GT(a, 0u);
}

// ---------------------------------------------------------------------------
// Session: journal replay, durable-ack synthesis, mid-recovery crashes
// ---------------------------------------------------------------------------

// Deterministic crash scripting: forwards frames to a real MC, crashing it
// (and dropping the frame) at scripted arrival ordinals, and optionally
// swallowing the reply of scripted arrivals (an "ack lost" event).
class CrashScriptTransport : public net::Transport {
 public:
  CrashScriptTransport(MemoryController& mc, std::set<uint64_t> crash_at,
                       std::set<uint64_t> drop_reply_at = {})
      : mc_(mc),
        crash_at_(std::move(crash_at)),
        drop_reply_at_(std::move(drop_reply_at)) {}

  uint64_t Send(const std::vector<uint8_t>& frame) override {
    ++stats_.frames_sent;
    ++arrivals_;
    if (crash_at_.count(arrivals_) != 0) {
      mc_.Restart();
      return 0;  // the request died with the server
    }
    auto reply = mc_.Handle(frame);
    if (drop_reply_at_.count(arrivals_) != 0) return 0;
    inbox_.push_back(std::move(reply));
    return 0;
  }
  bool Recv(std::vector<uint8_t>* frame, uint64_t* cycles) override {
    if (inbox_.empty()) return false;
    *frame = std::move(inbox_.front());
    inbox_.pop_front();
    *cycles = 0;
    ++stats_.frames_delivered;
    return true;
  }
  const net::TransportStats& stats() const override { return stats_; }

 private:
  MemoryController& mc_;
  std::set<uint64_t> crash_at_;
  std::set<uint64_t> drop_reply_at_;
  uint64_t arrivals_ = 0;
  std::deque<std::vector<uint8_t>> inbox_;
  net::TransportStats stats_;
};

TEST(CrashRecoverySession, ReplaysJournalThroughMidRecoveryCrash) {
  // Crash #1 lands on the 4th write; crash #2 lands *during the replay* the
  // first recovery runs. The session must re-handshake and replay again.
  const image::Image img = ArrayImage();
  MemoryController mc(img, softcache::Style::kSparc, 64);
  RetryConfig retry;
  retry.timeout_cycles = 10;
  LinkStats link_stats;
  SessionStats stats;
  Session session(
      std::make_unique<CrashScriptTransport>(mc, std::set<uint64_t>{4, 8}),
      retry, &link_stats, &stats, MsgType::kDataWriteback, /*first_seq=*/1000);

  uint64_t cycles = 0;
  for (uint32_t i = 0; i < 6; ++i) {
    auto reply = session.Call(
        Writeback(mc.DataBase() + i * 4, static_cast<uint8_t>(0xb0 + i)),
        &cycles);
    ASSERT_TRUE(reply.ok()) << reply.error().ToString();
    ASSERT_EQ(reply->type, MsgType::kWritebackAck);
  }
  EXPECT_TRUE(session.Synchronize(&cycles).ok());

  EXPECT_EQ(mc.restarts(), 2u);
  EXPECT_EQ(session.epoch(), 2u);
  EXPECT_EQ(stats.recoveries, 1u);       // one successful recovery...
  EXPECT_EQ(stats.epoch_changes, 2u);    // ...that saw two epoch changes
  EXPECT_GE(stats.journal_replays, 4u);  // partial replay + full replay
  EXPECT_EQ(stats.recovery_failures, 0u);
  EXPECT_GT(stats.recovery_cycles, 0u);
  for (uint32_t i = 0; i < 6; ++i) {
    EXPECT_EQ(mc.data()[i * 4], 0xb0 + i) << "write " << i << " lost";
  }
}

TEST(CrashRecoverySession, SynthesizesAckForFlushedOpWhoseAckWasLost) {
  // Op 31 crosses the flush barrier (durable) but its ack is swallowed; the
  // server then crashes before the retransmit lands. Recovery's watermark
  // proves the op durable, so the session answers it with a synthesized ack
  // instead of replaying (replaying would double-apply nothing here, but the
  // journal no longer holds it — the watermark already truncated it).
  const image::Image img = ArrayImage();
  MemoryController mc(img, softcache::Style::kSparc, 64);
  RetryConfig retry;
  retry.timeout_cycles = 10;
  LinkStats link_stats;
  SessionStats stats;
  const uint64_t n = kMcWriteFlushIntervalOps;  // ops 0..31; arrivals 1..32
  Session session(std::make_unique<CrashScriptTransport>(
                      mc, /*crash_at=*/std::set<uint64_t>{n + 1},
                      /*drop_reply_at=*/std::set<uint64_t>{n}),
                  retry, &link_stats, &stats, MsgType::kDataWriteback,
                  /*first_seq=*/1000);

  uint64_t cycles = 0;
  for (uint32_t i = 0; i < n; ++i) {
    auto reply =
        session.Call(Writeback(mc.DataBase() + i * 4, 0xc0), &cycles);
    ASSERT_TRUE(reply.ok()) << reply.error().ToString();
    ASSERT_EQ(reply->type, MsgType::kWritebackAck) << "op " << i;
  }
  EXPECT_EQ(mc.restarts(), 1u);
  EXPECT_EQ(stats.recoveries, 1u);
  EXPECT_EQ(stats.journal_replays, 0u);  // nothing left to replay: all durable
  EXPECT_EQ(session.journal_size(), 0u);
  for (uint32_t i = 0; i < n; ++i) {
    EXPECT_EQ(mc.data()[i * 4], 0xc0) << "write " << i << " lost";
  }
}

TEST(CrashRecoverySession, SynchronizeReplaysAfterIdleCrash) {
  // The server crashes after this client's last RPC; nothing would ever
  // observe the new epoch. The end-of-run barrier must.
  const image::Image img = ArrayImage();
  MemoryController mc(img, softcache::Style::kSparc, 64);
  net::Channel channel;
  RetryConfig retry;
  LinkStats link_stats;
  SessionStats stats;
  Session session(softcache::MakeMcTransport(mc, channel, {}), retry,
                  &link_stats, &stats, MsgType::kDataWriteback,
                  /*first_seq=*/1000);
  uint64_t cycles = 0;
  for (uint32_t i = 0; i < 3; ++i) {
    auto reply = session.Call(
        Writeback(mc.DataBase() + i * 4, static_cast<uint8_t>(0xe0 + i)),
        &cycles);
    ASSERT_TRUE(reply.ok());
  }
  mc.Restart();
  ASSERT_TRUE(session.Synchronize(&cycles).ok());
  EXPECT_EQ(stats.recoveries, 1u);
  EXPECT_EQ(stats.journal_replays, 3u);
  for (uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(mc.data()[i * 4], 0xe0 + i);
  }

  // Nothing journaled since: Synchronize after truncation is a no-op.
  const uint64_t requests_before = link_stats.requests;
  // (journal still holds the replayed suffix until a barrier truncates it,
  // so a second synchronize re-handshakes but finds the epoch unchanged.)
  ASSERT_TRUE(session.Synchronize(&cycles).ok());
  EXPECT_EQ(stats.recoveries, 1u);
  EXPECT_GE(link_stats.requests, requests_before);
}

// ---------------------------------------------------------------------------
// Clean failure: link give-up and bounded recovery
// ---------------------------------------------------------------------------

TEST(CrashRecoveryFailure, LinkGiveUpFailsRunCleanly) {
  // Satellite (b): a server that crashes on *every* request is equivalent to
  // a dead link. The run must degrade to a clean fault (kFault stop, give-up
  // counted) — not hang, not abort.
  const auto* spec = workloads::FindWorkload("adpcm_enc");
  ASSERT_NE(spec, nullptr);
  const image::Image img = workloads::CompileWorkload(*spec);

  softcache::SoftCacheConfig config;
  config.style = softcache::Style::kSparc;
  config.tcache_bytes = 64 * 1024;
  config.fault.crash_period = 1;  // every arrival kills the server
  config.retry.timeout_cycles = 10;
  config.retry.max_timeout_cycles = 100;
  config.retry.max_attempts = 3;
  softcache::SoftCacheSystem system(img, config);
  system.SetInput(workloads::MakeInput(spec->name, 1));
  const vm::RunResult result = system.Run(1'000'000'000ull);
  EXPECT_EQ(result.reason, vm::StopReason::kFault);
  EXPECT_FALSE(result.fault_message.empty());
  EXPECT_GE(system.stats().net.giveups, 1u);
  EXPECT_GT(system.mc().restarts(), 0u);
}

TEST(CrashRecoveryFailure, DcacheGiveUpFailsRunCleanly) {
  const image::Image img = *minicc::CompileMiniC(R"(
    int a[512];
    int main() {
      int sum = 0;
      for (int i = 0; i < 512; i++) { a[i] = i; sum += a[i]; }
      return sum % 251;
    }
  )");
  vm::Machine machine;
  machine.LoadImage(img);
  MemoryController mc(img, softcache::Style::kSparc, 64);
  net::Channel channel;
  dcache::DCacheConfig config;
  config.dcache_blocks = 8;
  config.fault.crash_period = 1;
  config.retry.timeout_cycles = 10;
  config.retry.max_timeout_cycles = 100;
  config.retry.max_attempts = 3;
  dcache::DataCache cache(machine, mc, channel, config);
  cache.Attach();
  const vm::RunResult result = machine.Run(1'000'000'000ull);
  EXPECT_EQ(result.reason, vm::StopReason::kFault);
  EXPECT_TRUE(cache.failed());
  cache.FlushAll();  // must be a no-op on a failed run, not an abort
  EXPECT_GE(cache.stats().net.giveups, 1u);
}

TEST(CrashRecoveryFailure, RecoveryAttemptsAreBounded) {
  // A hostile server whose every reply claims yet another epoch: recovery
  // can never converge and must abandon cleanly after the configured bound.
  class EpochChurnTransport : public net::Transport {
   public:
    uint64_t Send(const std::vector<uint8_t>& frame) override {
      ++stats_.frames_sent;
      auto request = Request::Parse(frame);
      SC_CHECK(request.ok());
      Reply reply;
      reply.seq = request->seq;
      if (request->type == MsgType::kHello) {
        reply.type = MsgType::kHelloAck;
        reply.addr = ++server_epoch_;  // a new incarnation every handshake
      } else {
        reply.type = MsgType::kWritebackAck;
        reply.addr = request->addr;
      }
      reply.epoch = (request->epoch + 1) & softcache::kEpochMask;
      inbox_.push_back(reply.Serialize());
      return 0;
    }
    bool Recv(std::vector<uint8_t>* frame, uint64_t* cycles) override {
      if (inbox_.empty()) return false;
      *frame = std::move(inbox_.front());
      inbox_.pop_front();
      *cycles = 0;
      ++stats_.frames_delivered;
      return true;
    }
    const net::TransportStats& stats() const override { return stats_; }

   private:
    uint32_t server_epoch_ = 0;
    std::deque<std::vector<uint8_t>> inbox_;
    net::TransportStats stats_;
  };

  RetryConfig retry;
  retry.max_recovery_attempts = 4;
  LinkStats link_stats;
  SessionStats stats;
  Session session(std::make_unique<EpochChurnTransport>(), retry, &link_stats,
                  &stats, MsgType::kDataWriteback, /*first_seq=*/1);
  uint64_t cycles = 0;
  auto reply = session.Call(Writeback(0x2000, 0x99), &cycles);
  EXPECT_FALSE(reply.ok());
  EXPECT_FALSE(reply.error().message.empty());
  EXPECT_GE(stats.recovery_failures, 1u);
  EXPECT_EQ(stats.recoveries, 0u);
  EXPECT_GT(stats.epoch_changes, 0u);
}

// ---------------------------------------------------------------------------
// End-to-end: workloads bit-identical under crash schedules
// ---------------------------------------------------------------------------

struct E2eRun {
  vm::RunResult result;
  std::string output;
  uint64_t restarts = 0;
  SessionStats session;
};

E2eRun RunWorkload(const image::Image& img, const std::vector<uint8_t>& input,
                   softcache::SoftCacheConfig config) {
  softcache::SoftCacheSystem system(img, config);
  system.SetInput(input);
  E2eRun run;
  run.result = system.Run(8'000'000'000ull);
  SC_CHECK(run.result.reason == vm::StopReason::kHalted)
      << run.result.fault_message;
  if (config.fault.crash_enabled()) {
    SC_CHECK(system.cc().SyncSession());
  }
  system.cc().CheckInvariants();
  run.output = system.OutputString();
  run.restarts = system.mc().restarts();
  run.session = system.stats().session;
  return run;
}

class CrashRecoveryWorkload : public ::testing::TestWithParam<std::string> {};

TEST_P(CrashRecoveryWorkload, BitIdenticalUnderPeriodicCrashes) {
  const auto* spec = workloads::FindWorkload(GetParam());
  ASSERT_NE(spec, nullptr);
  const image::Image img = workloads::CompileWorkload(*spec);
  const auto input = workloads::MakeInput(spec->name, 1);

  softcache::SoftCacheConfig config;
  config.style = softcache::Style::kSparc;
  config.tcache_bytes = 16 * 1024;  // small: evictions keep the link busy
  const E2eRun base = RunWorkload(img, input, config);

  config.fault.seed = EnvSeed();
  config.fault.crash_period = 16;
  const E2eRun crashed = RunWorkload(img, input, config);
  EXPECT_GT(crashed.restarts, 0u);
  EXPECT_GE(crashed.session.recoveries, 1u);
  EXPECT_LE(crashed.session.recoveries, crashed.restarts);
  EXPECT_EQ(crashed.output, base.output);
  EXPECT_EQ(crashed.result.exit_code, base.result.exit_code);
  EXPECT_EQ(crashed.result.instructions, base.result.instructions);
}

TEST_P(CrashRecoveryWorkload, BitIdenticalUnderSeededRandomCrashes) {
  const auto* spec = workloads::FindWorkload(GetParam());
  ASSERT_NE(spec, nullptr);
  const image::Image img = workloads::CompileWorkload(*spec);
  const auto input = workloads::MakeInput(spec->name, 1);

  softcache::SoftCacheConfig config;
  config.style = softcache::Style::kSparc;
  config.tcache_bytes = 16 * 1024;
  const E2eRun base = RunWorkload(img, input, config);

  config.fault.seed = EnvSeed();
  config.fault.crash = 0.03;
  const E2eRun crashed = RunWorkload(img, input, config);
  EXPECT_EQ(crashed.output, base.output);
  EXPECT_EQ(crashed.result.exit_code, base.result.exit_code);
  EXPECT_EQ(crashed.result.instructions, base.result.instructions);
}

INSTANTIATE_TEST_SUITE_P(Workloads, CrashRecoveryWorkload,
                         ::testing::Values("adpcm_enc", "compress95",
                                           "hextobdd", "sha256"),
                         [](const auto& param_info) { return param_info.param; });

TEST(CrashRecoveryPrefetch, BatchedRepliesSurviveCrashes) {
  // Crashes land while staged prefetch chunks from the dead epoch sit in the
  // CC; recovery must drop them and refetch on demand, bit-identically.
  const auto* spec = workloads::FindWorkload("hextobdd");
  ASSERT_NE(spec, nullptr);
  const image::Image img = workloads::CompileWorkload(*spec);
  const auto input = workloads::MakeInput(spec->name, 1);

  softcache::SoftCacheConfig config;
  config.style = softcache::Style::kSparc;
  config.tcache_bytes = 16 * 1024;
  config.prefetch.policy = softcache::PrefetchPolicy::kTemperature;
  const E2eRun base = RunWorkload(img, input, config);

  config.fault.seed = EnvSeed();
  config.fault.crash_period = 16;
  const E2eRun crashed = RunWorkload(img, input, config);
  EXPECT_GT(crashed.restarts, 0u);
  EXPECT_EQ(crashed.output, base.output);
  EXPECT_EQ(crashed.result.instructions, base.result.instructions);
}

TEST(CrashRecoveryPrefetch, CycleTriggeredCrashIsWiredThroughSystem) {
  const auto* spec = workloads::FindWorkload("adpcm_enc");
  ASSERT_NE(spec, nullptr);
  const image::Image img = workloads::CompileWorkload(*spec);
  const auto input = workloads::MakeInput(spec->name, 1);

  softcache::SoftCacheConfig config;
  config.style = softcache::Style::kSparc;
  config.tcache_bytes = 16 * 1024;
  const E2eRun base = RunWorkload(img, input, config);

  config.fault.crash_at_cycle = 1'000'000;
  const E2eRun crashed = RunWorkload(img, input, config);
  EXPECT_EQ(crashed.restarts, 1u);
  EXPECT_EQ(crashed.output, base.output);
  EXPECT_EQ(crashed.result.instructions, base.result.instructions);
}

// ---------------------------------------------------------------------------
// End-to-end: dcache writeback journal under crashes
// ---------------------------------------------------------------------------

TEST(CrashRecoveryDcache, DataIdenticalUnderPeriodicCrashes) {
  // Writeback-heavy traffic (tiny cache over a big array): crashes revert
  // unflushed writebacks on the server, and the dcache session's journal
  // must restore them. Flushed server memory must equal native memory.
  const image::Image img = *minicc::CompileMiniC(R"(
    int a[2048];
    int main() {
      for (int pass = 0; pass < 3; pass++) {
        for (int i = 0; i < 2048; i++) a[i] = a[i] + i * pass;
      }
      int sum = 0;
      for (int i = 0; i < 2048; i++) sum += a[i];
      return sum % 251;
    }
  )");

  vm::Machine native;
  native.LoadImage(img);
  const vm::RunResult native_result = native.Run(2'000'000'000);
  ASSERT_EQ(native_result.reason, vm::StopReason::kHalted);

  vm::Machine machine;
  machine.LoadImage(img);
  MemoryController mc(img, softcache::Style::kSparc, 64);
  net::Channel channel;
  dcache::DCacheConfig config;
  config.dcache_blocks = 16;
  config.fault.seed = EnvSeed();
  // Longer than a full journal replay (a barrier's worth of writes plus the
  // handshake), so recovery always makes progress between crashes.
  config.fault.crash_period = kMcWriteFlushIntervalOps + 8;
  dcache::DataCache cache(machine, mc, channel, config);
  cache.Attach();
  const vm::RunResult cached = machine.Run(2'000'000'000);
  ASSERT_EQ(cached.reason, vm::StopReason::kHalted) << cached.fault_message;
  cache.FlushAll();
  ASSERT_FALSE(cache.failed());
  EXPECT_EQ(cached.exit_code, native_result.exit_code);

  EXPECT_GT(mc.restarts(), 0u);
  EXPECT_GT(cache.stats().session.recoveries, 0u);
  EXPECT_GT(cache.stats().session.journal_replays, 0u);
  EXPECT_GT(mc.stale_epoch_rejects(), 0u);

  const uint32_t lo = img.data_base;
  const uint32_t hi = img.heap_base();
  for (uint32_t addr = lo; addr < hi; ++addr) {
    ASSERT_EQ(mc.data()[addr - mc.DataBase()], *(native.mem_data() + addr))
        << "data divergence at 0x" << std::hex << addr;
  }
}

TEST(CrashRecoveryDcache, CombinedIcacheDcacheCrashesStayIdentical) {
  // Both sessions (CC text path, dcache data path) share one MC; each must
  // detect its restarts independently and recover its own journal.
  const auto* spec = workloads::FindWorkload("adpcm_enc");
  ASSERT_NE(spec, nullptr);
  const image::Image img = workloads::CompileWorkload(*spec);
  const auto input = workloads::MakeInput(spec->name, 1);

  const auto run = [&](uint64_t crash_period) {
    softcache::SoftCacheConfig config;
    config.style = softcache::Style::kSparc;
    config.tcache_bytes = 16 * 1024;
    config.fault.seed = EnvSeed();
    config.fault.crash_period = crash_period;
    softcache::SoftCacheSystem system(img, config);
    system.SetInput(input);
    dcache::DCacheConfig dconfig;
    dconfig.local_base = system.cc().local_limit();
    dconfig.fault = config.fault;
    dcache::DataCache cache(system.machine(), system.mc(), system.channel(),
                            dconfig);
    cache.Attach();
    const vm::RunResult result = system.Run(16'000'000'000ull);
    SC_CHECK(result.reason == vm::StopReason::kHalted)
        << result.fault_message;
    cache.FlushAll();
    SC_CHECK(!cache.failed());
    if (config.fault.crash_enabled()) {
      SC_CHECK(system.cc().SyncSession());
    }
    return std::make_pair(result, system.OutputString());
  };
  const auto [base_result, base_output] = run(0);
  const auto [crash_result, crash_output] = run(64);
  EXPECT_EQ(crash_output, base_output);
  EXPECT_EQ(crash_result.exit_code, base_result.exit_code);
  EXPECT_EQ(crash_result.instructions, base_result.instructions);
}

}  // namespace
}  // namespace sc
