// Utility tests: RNG determinism and distribution sanity, accumulators,
// histograms, formatting helpers, Result/Error plumbing.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/result.h"
#include "util/rng.h"
#include "util/stats.h"

namespace sc::util {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next64() == b.Next64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, BelowIsInRangeAndCoversRange) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t v = rng.Below(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  bool hit_lo = false;
  bool hit_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = rng.Range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    if (v == -3) hit_lo = true;
    if (v == 3) hit_hi = true;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Accumulator, Moments) {
  Accumulator acc;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.Add(v);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_NEAR(acc.stddev(), 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram hist(0.0, 10.0, 5);
  hist.Add(-1.0);   // clamps to first
  hist.Add(0.5);
  hist.Add(3.0);
  hist.Add(9.9);
  hist.Add(50.0);   // clamps to last
  EXPECT_EQ(hist.total(), 5u);
  EXPECT_EQ(hist.bucket_count(0), 2u);
  EXPECT_EQ(hist.bucket_count(1), 1u);
  EXPECT_EQ(hist.bucket_count(4), 2u);
  EXPECT_DOUBLE_EQ(hist.bucket_low(1), 2.0);
  EXPECT_FALSE(hist.ToAscii().empty());
}

TEST(Histogram, Percentile) {
  Histogram hist(0.0, 100.0, 100);
  EXPECT_DOUBLE_EQ(hist.Percentile(50), 0.0);  // empty -> lo
  for (int i = 0; i < 100; ++i) hist.Add(i + 0.5);  // one per bucket
  // Uniform fill: percentile p lands at ~p% of the range.
  EXPECT_NEAR(hist.Percentile(50), 50.0, 1.0);
  EXPECT_NEAR(hist.Percentile(95), 95.0, 1.0);
  EXPECT_NEAR(hist.Percentile(99), 99.0, 1.0);
  EXPECT_NEAR(hist.Percentile(0), 0.0, 1.0);
  EXPECT_DOUBLE_EQ(hist.Percentile(100), 100.0);
  // Out-of-range p clamps.
  EXPECT_DOUBLE_EQ(hist.Percentile(-5), hist.Percentile(0));
  EXPECT_DOUBLE_EQ(hist.Percentile(150), hist.Percentile(100));
  // Skewed mass: everything in one bucket pins every percentile there.
  Histogram spike(0.0, 10.0, 10);
  for (int i = 0; i < 1000; ++i) spike.Add(3.5);
  EXPECT_GE(spike.Percentile(1), 3.0);
  EXPECT_LE(spike.Percentile(99), 4.0);
  // Percentiles are monotone in p.
  EXPECT_LE(spike.Percentile(10), spike.Percentile(90));
}

TEST(Format, WithCommas) {
  EXPECT_EQ(WithCommas(0), "0");
  EXPECT_EQ(WithCommas(999), "999");
  EXPECT_EQ(WithCommas(1000), "1,000");
  EXPECT_EQ(WithCommas(1234567890), "1,234,567,890");
}

TEST(Format, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.0 KB");
  EXPECT_EQ(HumanBytes(3 * 1024 * 1024), "3.0 MB");
}

TEST(ResultType, ValueAndError) {
  Result<int> ok_result(5);
  EXPECT_TRUE(ok_result.ok());
  EXPECT_EQ(*ok_result, 5);

  Result<int> err_result(Error{"boom", "file.mc", 3, 7});
  EXPECT_FALSE(err_result.ok());
  EXPECT_EQ(err_result.error().ToString(), "file.mc:3:7: boom");

  const Error bare{"plain"};
  EXPECT_EQ(bare.ToString(), "plain");
  const Error no_col{"msg", "f", 2, 0};
  EXPECT_EQ(no_col.ToString(), "f:2: msg");
}

TEST(StatusType, OkAndError) {
  Status ok = Status::Ok();
  EXPECT_TRUE(ok.ok());
  Status bad = Error{"nope"};
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().message, "nope");
}

}  // namespace
}  // namespace sc::util
