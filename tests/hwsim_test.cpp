// Hardware cache model and power model tests: exact miss counts on known
// traces, associativity/LRU behaviour, tag overhead arithmetic, energy model.
#include <gtest/gtest.h>

#include "hwsim/cache.h"
#include "hwsim/power.h"

namespace sc::hwsim {
namespace {

TEST(HwCache, ColdMissesThenHits) {
  Cache cache(CacheConfig{1024, 16, 1});
  EXPECT_FALSE(cache.Access(0x1000));  // cold
  EXPECT_TRUE(cache.Access(0x1000));   // hit
  EXPECT_TRUE(cache.Access(0x100c));   // same 16B block
  EXPECT_FALSE(cache.Access(0x1010));  // next block
  EXPECT_EQ(cache.stats().accesses, 4u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(HwCache, DirectMappedConflicts) {
  // 1 KB direct-mapped: addresses 1 KB apart map to the same set.
  Cache cache(CacheConfig{1024, 16, 1});
  EXPECT_FALSE(cache.Access(0x0000));
  EXPECT_FALSE(cache.Access(0x0400));  // evicts 0x0000
  EXPECT_FALSE(cache.Access(0x0000));  // conflict miss
  EXPECT_EQ(cache.stats().misses, 3u);
}

TEST(HwCache, TwoWayAvoidsThatConflict) {
  Cache cache(CacheConfig{1024, 16, 2});
  EXPECT_FALSE(cache.Access(0x0000));
  EXPECT_FALSE(cache.Access(0x0400));
  EXPECT_TRUE(cache.Access(0x0000));  // both fit in the set
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(HwCache, LruReplacement) {
  Cache cache(CacheConfig{1024, 16, 2});
  cache.Access(0x0000);  // way A
  cache.Access(0x0400);  // way B
  cache.Access(0x0000);  // A is now MRU
  cache.Access(0x0800);  // evicts LRU = 0x0400
  EXPECT_TRUE(cache.Access(0x0000));
  EXPECT_FALSE(cache.Access(0x0400));
}

TEST(HwCache, SequentialScanMissRate) {
  // A pure sequential sweep misses exactly once per block.
  Cache cache(CacheConfig{8192, 16, 1});
  for (uint32_t addr = 0; addr < 4096; addr += 4) cache.Access(addr);
  EXPECT_EQ(cache.stats().accesses, 1024u);
  EXPECT_EQ(cache.stats().misses, 256u);  // 4096 / 16
  EXPECT_DOUBLE_EQ(cache.stats().miss_rate(), 0.25);
}

TEST(HwCache, ResetClearsEverything) {
  Cache cache(CacheConfig{1024, 16, 1});
  cache.Access(0x100);
  cache.Reset();
  EXPECT_EQ(cache.stats().accesses, 0u);
  EXPECT_FALSE(cache.Access(0x100));
}

TEST(HwCache, TagOverheadMatchesPaperRange) {
  // Figure 6 caption: "tags for 32-bit addresses would add an extra 11-18%"
  // for the swept sizes with 16-byte blocks.
  for (const uint32_t size : {1024u, 4096u, 16384u, 65536u}) {
    Cache cache(CacheConfig{size, 16, 1});
    const double overhead = cache.TagOverheadFraction();
    EXPECT_GE(overhead, 0.11) << size;
    EXPECT_LE(overhead, 0.18) << size;
  }
}

TEST(HwCache, GeometryChecks) {
  Cache cache(CacheConfig{8192, 16, 2});
  EXPECT_EQ(cache.num_sets(), 256u);
}

TEST(PowerModel, StrongArmBreakdownSumsTo45Percent) {
  const StrongArmPowerBreakdown breakdown;
  EXPECT_NEAR(breakdown.caches_total(), 0.45, 1e-9);
}

TEST(PowerModel, HardwarePaysTagsSoftwareDoesNot) {
  const EnergyModel model;
  // Same access count, no misses: hardware pays the tag check per access.
  const double hw = HardwareCacheEnergy(model, 1000, 0, 16, 1);
  const double sw = SoftCacheEnergy(model, 1000, 0, 0, 0, 0);
  EXPECT_GT(hw, sw);
  EXPECT_NEAR(hw - sw, 1000 * model.tag_check, 1e-9);
}

TEST(PowerModel, ExtraInstructionsCostTheSoftCache) {
  const EnergyModel model;
  const double base = SoftCacheEnergy(model, 1000, 0, 0, 0, 0);
  const double extra = SoftCacheEnergy(model, 1000, 150, 0, 0, 0);
  EXPECT_NEAR(extra - base, 150 * model.data_read, 1e-9);
}

TEST(PowerModel, AssociativityMultipliesTagEnergy) {
  const EnergyModel model;
  const double direct = HardwareCacheEnergy(model, 1000, 0, 16, 1);
  const double four_way = HardwareCacheEnergy(model, 1000, 0, 16, 4);
  EXPECT_NEAR(four_way - direct, 3 * 1000 * model.tag_check, 1e-9);
}

TEST(PowerModel, BankPowerDownSavesLeakage) {
  const EnergyModel model;
  const double two_on = BankLeakEnergy(model, 1'000'000, 2, 8);
  const double all_on = BankLeakEnergy(model, 1'000'000, 8, 8);
  EXPECT_LT(two_on, all_on);
  // Powering fewer banks never costs more.
  double prev = 0;
  for (uint32_t banks = 1; banks <= 8; ++banks) {
    const double e = BankLeakEnergy(model, 1000, banks, 8);
    EXPECT_GT(e, prev);
    prev = e;
  }
}

}  // namespace
}  // namespace sc::hwsim
