// Reproduces the Section 4 power discussion:
//   * memory-system energy of a hardware I-cache (tag check every access)
//     versus the software cache (no tag checks on hits, extra instructions
//     and miss handling instead);
//   * the StrongARM framing: caches are 45% of chip power (I$ 27%, D$ 16%,
//     WB 2% — Montanaro et al., the paper's [10]);
//   * the bank power-down capability: a fully associative software cache can
//     be sized to the working set, powering only the banks it needs.
#include "bench/bench_util.h"
#include "hwsim/cache.h"
#include "hwsim/power.h"
#include "util/stats.h"

using namespace sc;

int main() {
  bench::PrintHeader("Section 4: memory-system power analysis",
                     "Section 4 (Discussion: power / novel capabilities)");

  const hwsim::EnergyModel energy;
  const hwsim::StrongArmPowerBreakdown strongarm;
  std::printf(
      "StrongARM SA-110 breakdown [10]: I-cache %.0f%%, D-cache %.0f%%, "
      "write buffer %.0f%% => caches %.0f%% of chip power\n\n",
      100 * strongarm.icache, 100 * strongarm.dcache, 100 * strongarm.write_buffer,
      100 * strongarm.caches_total());

  std::printf("%-12s %14s %14s %10s %14s\n", "app", "hw energy", "sw energy",
              "sw/hw", "chip-level");
  bench::PrintRule();

  const char* kApps[] = {"compress95", "adpcm_enc", "hextobdd", "mpeg2enc"};
  for (const char* name : kApps) {
    const auto* spec = workloads::FindWorkload(name);
    const image::Image img = workloads::CompileWorkload(*spec);
    const auto input = workloads::MakeInput(name, 1);

    // Hardware baseline: 8 KB direct-mapped I-cache, a tag check per fetch.
    hwsim::ICacheProbe probe(hwsim::CacheConfig{8192, 16, 1});
    const bench::NativeRun native = bench::RunNativeWorkload(img, input, &probe);
    const double hw = hwsim::HardwareCacheEnergy(
        energy, probe.stats().accesses, probe.stats().misses, 16, 1);

    // Software cache: hits are untagged SRAM reads; the rewriter's extra
    // jumps and the miss handling are the added energy.
    softcache::SoftCacheConfig config;
    config.tcache_bytes = 32 * 1024;
    const bench::CachedRun cached = bench::RunCachedWorkload(img, input, config);
    const uint64_t extra_instrs =
        cached.result.instructions - native.result.instructions;
    const double sw = hwsim::SoftCacheEnergy(
        energy, native.result.instructions, extra_instrs,
        cached.stats.blocks_translated, cached.stats.words_installed,
        /*miss_overhead_words=*/60);
    const double ratio = sw / hw;
    // Chip-level: the I-cache is 27% of chip power; scale that slice.
    const double chip = 1.0 - strongarm.icache * (1.0 - ratio);
    std::printf("%-12s %14.3g %14.3g %10.3f %13.1f%%\n", name, hw, sw, ratio,
                100.0 * chip);
  }
  std::printf(
      "(sw/hw < 1 means the software cache spends less memory-system energy;\n"
      " chip-level column rescales the I-cache's 27%% slice of total power)\n");

  std::printf("\nbank power-down (novel capability 1): 8 banks x 4 KB local "
              "memory, banks powered = ceil(working set / bank)\n");
  std::printf("%-12s %12s %8s %18s\n", "app", "working set", "banks",
              "leakage vs all-on");
  bench::PrintRule();
  for (const char* name : kApps) {
    const auto* spec = workloads::FindWorkload(name);
    const image::Image img = workloads::CompileWorkload(*spec);
    softcache::SoftCacheConfig config;
    config.tcache_bytes = 32 * 1024;
    const bench::CachedRun run =
        bench::RunCachedWorkload(img, workloads::MakeInput(name, 1), config);
    const uint64_t wss = run.stats.tcache_bytes_used_peak;
    const uint32_t banks =
        static_cast<uint32_t>(std::min<uint64_t>(8, (wss + 4095) / 4096));
    const double on = hwsim::BankLeakEnergy(energy, 1'000'000, banks, 8);
    const double all = hwsim::BankLeakEnergy(energy, 1'000'000, 8, 8);
    std::printf("%-12s %12s %8u %17.1f%%\n", name,
                util::HumanBytes(wss).c_str(), banks, 100.0 * on / all);
  }
  std::printf(
      "\npaper: 'we could dynamically deduce the working set and shut down\n"
      "unneeded memory banks'; because the software cache is fully\n"
      "associative it can be resized to any bank boundary.\n");
  return 0;
}
