// Micro-benchmarks (google-benchmark) for the substrate itself: interpreter
// throughput, instruction encode/decode, protocol framing, the hardware
// cache model, and the miss path. These guard against performance
// regressions in the simulation infrastructure, not paper results.
#include <benchmark/benchmark.h>

#include "hwsim/cache.h"
#include "isa/isa.h"
#include "minicc/compiler.h"
#include "softcache/protocol.h"
#include "softcache/system.h"
#include "util/rng.h"
#include "vm/machine.h"

namespace sc {
namespace {

const image::Image& LoopImage() {
  static const image::Image img = [] {
    auto compiled = minicc::CompileMiniC(R"(
      int main() {
        int sum = 0;
        for (int i = 0; i < 100000; i++) sum += i % 7;
        return sum % 251;
      }
    )");
    SC_CHECK(compiled.ok());
    return std::move(*compiled);
  }();
  return img;
}

void BM_VmInterpreterLoop(benchmark::State& state) {
  for (auto _ : state) {
    vm::Machine machine;
    machine.LoadImage(LoopImage());
    const vm::RunResult run = machine.Run();
    benchmark::DoNotOptimize(run.cycles);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<int64_t>(run.instructions));
  }
}
BENCHMARK(BM_VmInterpreterLoop)->Unit(benchmark::kMillisecond);

void BM_IsaDecode(benchmark::State& state) {
  util::Rng rng(7);
  std::vector<uint32_t> words(4096);
  for (auto& w : words) w = rng.Next32();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(isa::Decode(words[i++ & 4095]));
  }
}
BENCHMARK(BM_IsaDecode);

void BM_IsaEncodeBranch(benchmark::State& state) {
  int32_t offset = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        isa::EncBranch(isa::Opcode::kBne, isa::kT0, isa::kT1, offset));
    offset = (offset + 1) & 1023;
  }
}
BENCHMARK(BM_IsaEncodeBranch);

void BM_ProtocolChunkRoundTrip(benchmark::State& state) {
  softcache::Reply reply;
  reply.type = softcache::MsgType::kChunkReply;
  reply.payload.resize(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    const auto bytes = reply.Serialize();
    auto parsed = softcache::Reply::Parse(bytes);
    benchmark::DoNotOptimize(parsed.ok());
  }
  state.SetBytesProcessed(state.iterations() *
                          (reply.wire_bytes() + softcache::kRequestBytes));
}
BENCHMARK(BM_ProtocolChunkRoundTrip)->Arg(32)->Arg(256);

void BM_HwCacheAccess(benchmark::State& state) {
  hwsim::Cache cache(hwsim::CacheConfig{8192, 16, 2});
  util::Rng rng(3);
  std::vector<uint32_t> addrs(8192);
  for (auto& a : addrs) a = static_cast<uint32_t>(rng.Below(64 * 1024)) & ~3u;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Access(addrs[i++ & 8191]));
  }
}
BENCHMARK(BM_HwCacheAccess);

void BM_SoftCacheColdStart(benchmark::State& state) {
  for (auto _ : state) {
    softcache::SoftCacheConfig config;
    config.tcache_bytes = 16 * 1024;
    softcache::SoftCacheSystem system(LoopImage(), config);
    const vm::RunResult run = system.Run();
    benchmark::DoNotOptimize(run.cycles);
  }
}
BENCHMARK(BM_SoftCacheColdStart)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sc

BENCHMARK_MAIN();
