// One memory controller serving N cache controllers: server-side economics.
//
// The paper's cost argument is that one powerful MC amortizes across many
// cheap embedded clients. This bench quantifies that: for client counts
// {1, 8, 64, 256} over three workloads it reports how much translation work
// and wire traffic the SERVER pays as the fleet grows. Two effects compose:
//
//   * the shared translation memo keeps the server's cut count FLAT (each
//     chunk translated once, ever) where a memo-less server would scale
//     linearly — the memo hit rate is exactly the fraction of fleet demand
//     served for free;
//   * content-addressed shared replies keep the server's WIRE cost per
//     client falling with fleet size: the first client to demand a hot chunk
//     pays the full body, every later client gets a 36-byte digest reply and
//     fills the chunk from its snooped content store. wire bytes / client
//     must therefore decrease monotonically as the fleet grows.
//
// Per-client guest behavior (output, exit code, instruction count, client
// translation count) is SC_CHECKed identical to the solo run at every fleet
// size. CYCLE counts are NOT compared: digest replies are smaller frames, so
// shared-reply mode legitimately changes miss-path timing — it may only
// change timing, never architectural state.
//
// A second table measures the SERVER-SCALE story: the same MC core fronted
// by the worker-pool loop, fed by {256, 1024, 4096} logical clients x
// {1, 2, 4, 8} worker rows. Real VMs at 4096 clients are infeasible (each
// Machine carries the full guest address space), so the fleet is replayed
// synthetically: a solo run records the genuinely demanded chunk addresses,
// and each logical client re-demands that sequence as serialized
// kChunkRequest frames submitted through the loop from a fixed pool of
// driver threads (stop-and-wait per client, like the real transport). The
// sweep asserts that the reply byte stream and wire bytes/client are
// IDENTICAL across worker counts (more workers may only change timing), and
// on a many-core host that the worker pool actually scales service
// throughput. Results land in BENCH_server_scale.json.
//
// Flags:
//   --smoke       one workload, clients {1, 2}; scale sweep at 1024 clients
//                 x workers {1, 4} only (CI crash + scaling check)
//   --out=PATH    JSON output path (default BENCH_multiclient.json)
//   --scale-out=PATH  scale-sweep JSON path (default BENCH_server_scale.json)
//   --trace=PATH  merged Chrome trace of the first workload's 8-client fleet
//                 run (2 clients under --smoke): one lane per client plus the
//                 server loop/shard lanes, misses linked by flow arrows
#include <chrono>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "obs/trace_mux.h"
#include "softcache/mc.h"
#include "softcache/protocol.h"
#include "softcache/server_loop.h"
#include "softcache/system.h"

using namespace sc;

namespace {

struct Row {
  std::string workload;
  uint32_t clients = 0;
  uint64_t server_translates = 0;   // chunk cuts actually performed
  uint64_t memo_hits = 0;           // fleet demand served from the memo
  double memo_hit_rate = 0.0;       // hits / (hits + translates)
  uint64_t server_wire_bytes = 0;   // summed over every client channel
  double wire_bytes_per_client = 0.0;
  uint64_t server_requests = 0;     // frames the MC handled
  uint64_t shared_requests = 0;     // coalescible demand fetches
  uint64_t digest_replies = 0;      // replies that skipped the body
  uint64_t digest_bytes_saved = 0;  // body bytes that never hit the wire
  uint64_t client_miss_cycles = 0;  // client 0's miss-path cycles
  uint64_t client_cycles = 0;       // client 0's guest cycles
};

softcache::SoftCacheConfig BaseConfig() {
  softcache::SoftCacheConfig config;
  config.style = softcache::Style::kSparc;
  config.tcache_bytes = 24 * 1024;
  return config;
}

Row RunFleet(const workloads::WorkloadSpec& spec, const image::Image& img,
             const std::vector<uint8_t>& input, const bench::NativeRun& native,
             const bench::CachedRun& solo, uint32_t clients,
             const std::string& trace_path) {
  softcache::MultiClientConfig config;
  config.clients = clients;
  config.base = BaseConfig();
  config.base.shared_reply = true;  // content-addressed coalescing on
  config.server.shards = 4;         // exercise the sharded memo/translate path
  softcache::MultiClientSystem fleet(img, config);
  for (uint32_t i = 0; i < clients; ++i) fleet.SetInput(i, input);
  // Merged-trace export rides the same run the table row comes from: the
  // solo-equivalence SC_CHECKs below double as proof that tracing did not
  // perturb guest execution.
  obs::TraceMux mux;
  if (!trace_path.empty()) {
    fleet.AttachTraceMux(&mux);
    mux.EnableAll();
  }
  const std::vector<vm::RunResult> results = fleet.RunAll(16'000'000'000ull);
  if (!trace_path.empty()) {
    std::ofstream trace_out(trace_path);
    SC_CHECK(trace_out.good()) << "cannot open " << trace_path;
    mux.ExportChromeJson(trace_out);
    std::printf("wrote merged fleet trace %s (%zu lanes)\n", trace_path.c_str(),
                mux.lane_count());
  }

  Row row;
  row.workload = spec.name;
  row.clients = clients;
  for (uint32_t i = 0; i < clients; ++i) {
    // Solo-equivalence: sharing the server must not change ANY client's
    // guest-visible execution or its client-side cache contents. Cycles are
    // deliberately not compared — digest replies shrink miss-path frames.
    SC_CHECK(results[i].reason == vm::StopReason::kHalted)
        << spec.name << " client " << i << ": " << results[i].fault_message;
    SC_CHECK(fleet.OutputString(i) == native.output)
        << spec.name << " client " << i << " output diverged from native";
    SC_CHECK(results[i].exit_code == solo.result.exit_code)
        << spec.name << " client " << i << " exit code diverged from solo";
    SC_CHECK(results[i].instructions == solo.result.instructions)
        << spec.name << " client " << i << " instructions diverged from solo";
    SC_CHECK(fleet.cc(i).stats().blocks_translated ==
             solo.stats.blocks_translated)
        << spec.name << " client " << i << " translation count diverged";
    row.server_wire_bytes += fleet.channel(i).stats().total_bytes();
  }
  row.wire_bytes_per_client =
      static_cast<double>(row.server_wire_bytes) / static_cast<double>(clients);
  const softcache::McServerStats& server = fleet.mc().server().stats();
  row.server_translates = server.translates;
  row.memo_hits = server.translate_memo_hits;
  const uint64_t cuts = server.translates + server.translate_memo_hits;
  row.memo_hit_rate =
      cuts == 0 ? 0.0
                : static_cast<double>(server.translate_memo_hits) /
                      static_cast<double>(cuts);
  row.server_requests = server.requests_served;
  row.shared_requests = server.shared_requests;
  row.digest_replies = server.digest_replies;
  row.digest_bytes_saved = server.digest_bytes_saved;
  row.client_miss_cycles = fleet.cc(0).stats().miss_cycles;
  row.client_cycles = results[0].cycles;
  return row;
}

void PrintRow(const Row& row) {
  std::printf("%-10s %7u %10llu %10llu %8.1f%% %12llu %10.0f %10llu\n",
              row.workload.c_str(), row.clients,
              static_cast<unsigned long long>(row.server_translates),
              static_cast<unsigned long long>(row.memo_hits),
              100.0 * row.memo_hit_rate,
              static_cast<unsigned long long>(row.server_wire_bytes),
              row.wire_bytes_per_client,
              static_cast<unsigned long long>(row.digest_replies));
}

void WriteJson(const std::string& path, const std::vector<Row>& rows) {
  FILE* f = std::fopen(path.c_str(), "w");
  SC_CHECK(f != nullptr) << "cannot open " << path;
  std::fprintf(f, "{\n  \"bench\": \"multiclient\",\n  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"workload\": \"%s\", \"clients\": %u, "
                 "\"server_translates\": %llu, \"memo_hits\": %llu, "
                 "\"memo_hit_rate\": %.4f, \"server_wire_bytes\": %llu, "
                 "\"wire_bytes_per_client\": %.1f, "
                 "\"server_requests\": %llu, \"shared_requests\": %llu, "
                 "\"digest_replies\": %llu, \"digest_bytes_saved\": %llu, "
                 "\"client_miss_cycles\": %llu, \"client_cycles\": %llu}%s\n",
                 r.workload.c_str(), r.clients,
                 static_cast<unsigned long long>(r.server_translates),
                 static_cast<unsigned long long>(r.memo_hits),
                 r.memo_hit_rate,
                 static_cast<unsigned long long>(r.server_wire_bytes),
                 r.wire_bytes_per_client,
                 static_cast<unsigned long long>(r.server_requests),
                 static_cast<unsigned long long>(r.shared_requests),
                 static_cast<unsigned long long>(r.digest_replies),
                 static_cast<unsigned long long>(r.digest_bytes_saved),
                 static_cast<unsigned long long>(r.client_miss_cycles),
                 static_cast<unsigned long long>(r.client_cycles),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

// ---- server-scale sweep (worker-pool loop under synthetic fleet load) ----

struct ScaleRow {
  uint32_t clients = 0;
  uint32_t workers = 0;
  uint64_t frames = 0;            // kChunkRequest frames serviced
  uint64_t server_translates = 0;
  uint64_t memo_hits = 0;
  uint64_t wall_ns = 0;           // host wall clock for the whole replay
  double frames_per_sec = 0.0;
  uint64_t wire_bytes = 0;        // request + reply bytes, all clients
  double wire_bytes_per_client = 0.0;
  uint64_t reply_hash = 0;        // fleet digest of every reply byte stream
};

uint64_t Fnv64(const uint8_t* data, size_t len, uint64_t h) {
  for (size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 1099511628211ull;
  }
  return h;
}

// The demand sequence a real client generates: every chunk address the solo
// run actually translated, read back out of the server's memo. Replaying
// these is real translation work — same chunker, same artifacts — without
// paying for a guest Machine per client.
std::vector<uint32_t> RecordDemandAddrs(const image::Image& img,
                                        const std::vector<uint8_t>& input) {
  softcache::SoftCacheSystem system(img, BaseConfig());
  system.SetInput(input);
  const vm::RunResult r = system.Run(16'000'000'000ull);
  SC_CHECK(r.reason == vm::StopReason::kHalted) << r.fault_message;
  std::vector<uint32_t> addrs;
  for (const auto& row : system.mc().server().SnapshotMemo()) {
    addrs.push_back(row.addr);
  }
  SC_CHECK(!addrs.empty()) << "solo run demanded no chunks";
  return addrs;
}

// Lanes/shards for the replay server: finer than the worker count so the
// modulo lane->worker ownership spreads clustered hot addresses (real text
// is front-loaded) across the pool.
constexpr uint32_t kScaleShards = 64;
// Driver threads submitting frames (each drives its clients stop-and-wait,
// so at most kScaleDrivers frames are in flight). Fixed across rows so only
// the worker count varies between measurements.
constexpr uint32_t kScaleDrivers = 8;

ScaleRow ReplayFleet(const image::Image& img,
                     const std::vector<uint32_t>& addrs, uint32_t clients,
                     uint32_t workers) {
  softcache::McServerConfig scfg;
  scfg.shards = kScaleShards;
  softcache::MemoryController mc(img, softcache::Style::kSparc, 64, 1, scfg);
  softcache::McServerLoop loop(
      [&mc](uint32_t, const std::vector<uint8_t>& frame) {
        return mc.Handle(frame);
      },
      [&mc](uint32_t, const std::vector<uint8_t>& frame) {
        return mc.server().ShardFor(softcache::PeekFrameAddr(frame));
      },
      softcache::McServerLoopConfig{kScaleShards, workers, 0});

  const uint32_t n = static_cast<uint32_t>(addrs.size());
  std::vector<uint64_t> client_bytes(clients, 0);
  std::vector<uint64_t> client_hash(clients, 14695981039346656037ull);
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> drivers;
  drivers.reserve(kScaleDrivers);
  for (uint32_t d = 0; d < kScaleDrivers; ++d) {
    drivers.emplace_back([&, d] {
      for (uint32_t c = d; c < clients; c += kScaleDrivers) {
        // Rotate each client's demand order so concurrent clients hit
        // different shards at any instant (a fleet's miss streams are not
        // phase-locked); the rotation is a pure function of the client id,
        // so every run replays the identical per-client sequence.
        const uint32_t rot = (c * 17u) % n;
        for (uint32_t k = 0; k < n; ++k) {
          softcache::Request req;
          req.type = softcache::MsgType::kChunkRequest;
          req.seq = k + 1;
          req.addr = addrs[(rot + k) % n];
          req.client_id = c;
          const std::vector<uint8_t> frame = req.Serialize();
          const std::vector<uint8_t> reply = loop.Submit(c, frame);
          client_bytes[c] += frame.size() + reply.size();
          client_hash[c] = Fnv64(reply.data(), reply.size(), client_hash[c]);
        }
      }
    });
  }
  for (std::thread& t : drivers) t.join();
  const uint64_t wall_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());

  ScaleRow row;
  row.clients = clients;
  row.workers = workers;
  row.frames = static_cast<uint64_t>(clients) * n;
  SC_CHECK(loop.stats().requests_enqueued == row.frames)
      << "loop lost frames: " << loop.stats().requests_enqueued;
  const softcache::McServerStats& server = mc.server().stats();
  SC_CHECK(server.requests_served == row.frames)
      << "server lost frames: " << server.requests_served;
  row.server_translates = server.translates;
  row.memo_hits = server.translate_memo_hits;
  // Translate-once economics must hold under the pool: every address cut
  // exactly once fleet-wide, everything else a memo hit.
  SC_CHECK(row.server_translates == n)
      << "expected " << n << " cuts, got " << row.server_translates;
  SC_CHECK(row.memo_hits == row.frames - n) << "memo hits diverged";
  row.wall_ns = wall_ns;
  row.frames_per_sec = wall_ns == 0 ? 0.0
                                    : static_cast<double>(row.frames) * 1e9 /
                                          static_cast<double>(wall_ns);
  // Wire cost must be identical for every client (same demand set, full
  // bodies), so per-client flatness is exact, not approximate.
  for (uint32_t c = 0; c < clients; ++c) {
    SC_CHECK(client_bytes[c] == client_bytes[0])
        << "client " << c << " wire bytes diverged under workers=" << workers;
    row.wire_bytes += client_bytes[c];
    row.reply_hash = Fnv64(reinterpret_cast<const uint8_t*>(&client_hash[c]),
                           sizeof(client_hash[c]), row.reply_hash);
  }
  row.wire_bytes_per_client =
      static_cast<double>(row.wire_bytes) / static_cast<double>(clients);
  return row;
}

void WriteScaleJson(const std::string& path, const std::string& workload,
                    size_t chunk_addrs, const std::vector<ScaleRow>& rows,
                    double speedup, bool speedup_asserted) {
  FILE* f = std::fopen(path.c_str(), "w");
  SC_CHECK(f != nullptr) << "cannot open " << path;
  std::fprintf(f,
               "{\n  \"bench\": \"server_scale\",\n  \"workload\": \"%s\",\n"
               "  \"chunk_addrs\": %zu,\n  \"shards\": %u,\n"
               "  \"drivers\": %u,\n  \"hardware_concurrency\": %u,\n"
               "  \"rows\": [\n",
               workload.c_str(), chunk_addrs, kScaleShards, kScaleDrivers,
               std::thread::hardware_concurrency());
  for (size_t i = 0; i < rows.size(); ++i) {
    const ScaleRow& r = rows[i];
    std::fprintf(f,
                 "    {\"clients\": %u, \"workers\": %u, \"frames\": %llu, "
                 "\"server_translates\": %llu, \"memo_hits\": %llu, "
                 "\"wall_ns\": %llu, \"frames_per_sec\": %.0f, "
                 "\"wire_bytes\": %llu, \"wire_bytes_per_client\": %.1f, "
                 "\"reply_hash\": \"0x%016llx\"}%s\n",
                 r.clients, r.workers,
                 static_cast<unsigned long long>(r.frames),
                 static_cast<unsigned long long>(r.server_translates),
                 static_cast<unsigned long long>(r.memo_hits),
                 static_cast<unsigned long long>(r.wall_ns), r.frames_per_sec,
                 static_cast<unsigned long long>(r.wire_bytes),
                 r.wire_bytes_per_client,
                 static_cast<unsigned long long>(r.reply_hash),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"speedup_w4_over_w1_at_1024\": %.3f,\n"
               "  \"speedup_asserted\": %s\n}\n",
               speedup, speedup_asserted ? "true" : "false");
  std::fclose(f);
}

// Real-VM cross-check riding the sweep: a small fleet run end-to-end with
// workers=1 and workers=4 must produce byte-identical guest output (and
// identical instruction/translation counts) — the pool may only change
// which thread services a frame, never what the frame returns.
void CheckRealFleetWorkerIdentity(const workloads::WorkloadSpec& spec,
                                  const image::Image& img,
                                  const std::vector<uint8_t>& input) {
  std::vector<std::string> outputs;
  std::vector<uint64_t> instructions;
  std::vector<uint64_t> translates;
  for (const uint32_t workers : {1u, 4u}) {
    softcache::MultiClientConfig config;
    config.clients = 4;
    config.base = BaseConfig();
    config.server.shards = 4;
    config.server.workers = workers;
    softcache::MultiClientSystem fleet(img, config);
    for (uint32_t i = 0; i < config.clients; ++i) fleet.SetInput(i, input);
    const std::vector<vm::RunResult> results =
        fleet.RunAll(16'000'000'000ull);
    std::string out;
    uint64_t instrs = 0;
    for (uint32_t i = 0; i < config.clients; ++i) {
      SC_CHECK(results[i].reason == vm::StopReason::kHalted)
          << spec.name << " workers=" << workers << " client " << i << ": "
          << results[i].fault_message;
      out += fleet.OutputString(i);
      instrs += results[i].instructions;
    }
    outputs.push_back(out);
    instructions.push_back(instrs);
    translates.push_back(fleet.mc().server().stats().translates);
  }
  SC_CHECK(outputs[0] == outputs[1])
      << spec.name << ": guest output diverged between workers=1 and 4";
  SC_CHECK(instructions[0] == instructions[1])
      << spec.name << ": instruction counts diverged between worker counts";
  SC_CHECK(translates[0] == translates[1])
      << spec.name << ": server translation counts diverged";
  std::printf("real 4-client fleet: workers=1 vs workers=4 guest output "
              "byte-identical (%llu instrs, %llu cuts)\n",
              static_cast<unsigned long long>(instructions[0]),
              static_cast<unsigned long long>(translates[0]));
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_multiclient.json";
  std::string scale_out_path = "BENCH_server_scale.json";
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
    if (std::strncmp(argv[i], "--scale-out=", 12) == 0) {
      scale_out_path = argv[i] + 12;
    }
    if (std::strncmp(argv[i], "--trace=", 8) == 0) trace_path = argv[i] + 8;
  }

  bench::PrintHeader(
      "One memory controller serving N cache controllers",
      "Section 1 (one powerful MC amortized across many cheap clients)");

  std::vector<std::string> names = {"dijkstra", "sha256", "adpcm_enc"};
  std::vector<uint32_t> fleet_sizes = {1, 8, 64, 256};
  if (smoke) {
    names.resize(1);
    fleet_sizes = {1, 2};
  }

  std::printf("%-10s %7s %10s %10s %9s %12s %10s %10s\n", "workload",
              "clients", "translate", "memo hits", "hit rate", "server bytes",
              "bytes/cl", "digests");
  bench::PrintRule();

  std::vector<Row> rows;
  bool translations_flat = true;
  bool wire_decreasing = true;
  for (const std::string& name : names) {
    const auto* spec = workloads::FindWorkload(name);
    SC_CHECK(spec != nullptr) << "unknown workload " << name;
    const image::Image img = workloads::CompileWorkload(*spec);
    const auto input = workloads::MakeInput(name, 1);
    const bench::NativeRun native = bench::RunNativeWorkload(img, input);
    const bench::CachedRun solo =
        bench::RunCachedWorkload(img, input, BaseConfig());
    SC_CHECK(solo.output == native.output) << name << " solo output diverged";

    uint64_t baseline_translates = 0;
    double prev_wire_per_client = 0.0;
    // One traced configuration per invocation: the first workload at the
    // second fleet size (8 clients, 2 under --smoke) keeps the trace small
    // enough to load while still showing cross-client reply coalescing.
    const uint32_t traced_clients = fleet_sizes[1];
    for (uint32_t clients : fleet_sizes) {
      const bool traced = !trace_path.empty() && name == names.front() &&
                          clients == traced_clients;
      const Row row = RunFleet(*spec, img, input, native, solo, clients,
                               traced ? trace_path : std::string());
      rows.push_back(row);
      PrintRow(row);
      // The tentpole economics, part 1: server translation work must not
      // scale with the fleet — every distinct chunk is cut once regardless
      // of client count, so every fleet size matches the 1-client cut count.
      if (clients == fleet_sizes.front()) {
        baseline_translates = row.server_translates;
      } else if (row.server_translates != baseline_translates) {
        translations_flat = false;
      }
      SC_CHECK(row.server_translates == baseline_translates)
          << name << " x" << clients
          << ": server translations scaled with the fleet";
      // Part 2: with shared replies the amortized wire cost per client must
      // FALL as the fleet grows — hot bodies cross the medium once, later
      // demanders ride 36-byte digest frames.
      if (clients != fleet_sizes.front() &&
          row.wire_bytes_per_client >= prev_wire_per_client) {
        wire_decreasing = false;
        std::printf("!! %s x%u: wire bytes/client did not decrease\n",
                    name.c_str(), clients);
      }
      prev_wire_per_client = row.wire_bytes_per_client;
    }
    bench::PrintRule();
  }

  WriteJson(out_path, rows);
  std::printf("\nserver translations flat across fleet sizes: %s\n",
              translations_flat ? "yes" : "NO");
  std::printf("wire bytes per client monotonically decreasing: %s\n",
              wire_decreasing ? "yes" : "NO");
  std::printf("wrote %s\n", out_path.c_str());

  // ---- server-scale sweep: worker pool under synthetic fleet load ----
  bench::PrintHeader(
      "Server worker-pool scaling (synthetic frame replay)",
      "Section 1 (one powerful MC: service throughput under fleet load)");
  const std::string scale_name = names.front();
  const auto* scale_spec = workloads::FindWorkload(scale_name);
  const image::Image scale_img = workloads::CompileWorkload(*scale_spec);
  const auto scale_input = workloads::MakeInput(scale_name, 1);
  const std::vector<uint32_t> demand_addrs =
      RecordDemandAddrs(scale_img, scale_input);
  std::printf("demand sequence: %zu chunk addresses from a solo %s run\n",
              demand_addrs.size(), scale_name.c_str());

  std::vector<uint32_t> scale_clients = {256, 1024, 4096};
  std::vector<uint32_t> scale_workers = {1, 2, 4, 8};
  if (smoke) {
    scale_clients = {1024};
    scale_workers = {1, 4};
  }
  std::printf("%8s %8s %10s %10s %10s %12s %10s\n", "clients", "workers",
              "frames", "translate", "memo hits", "frames/sec", "bytes/cl");
  bench::PrintRule();
  std::vector<ScaleRow> scale_rows;
  bool replies_identical = true;
  bool wire_flat = true;
  double speedup_w4 = 0.0;
  for (const uint32_t clients : scale_clients) {
    ScaleRow baseline;  // the first worker row of this client count, by value
    uint64_t w1_wall = 0;
    uint64_t w4_wall = 0;
    for (const uint32_t workers : scale_workers) {
      const ScaleRow row =
          ReplayFleet(scale_img, demand_addrs, clients, workers);
      scale_rows.push_back(row);
      std::printf("%8u %8u %10llu %10llu %10llu %12.0f %10.1f\n", row.clients,
                  row.workers, static_cast<unsigned long long>(row.frames),
                  static_cast<unsigned long long>(row.server_translates),
                  static_cast<unsigned long long>(row.memo_hits),
                  row.frames_per_sec, row.wire_bytes_per_client);
      if (workers == scale_workers.front()) {
        baseline = row;
      } else {
        // More workers may only change TIMING: the reply byte streams and
        // the wire cost per client must match the first worker row exactly.
        if (row.reply_hash != baseline.reply_hash) {
          replies_identical = false;
          std::printf("!! x%u workers=%u: reply stream diverged\n", clients,
                      workers);
        }
        if (row.wire_bytes != baseline.wire_bytes) {
          wire_flat = false;
          std::printf("!! x%u workers=%u: wire bytes moved with workers\n",
                      clients, workers);
        }
      }
      if (workers == 1) w1_wall = row.wall_ns;
      if (workers == 4) w4_wall = row.wall_ns;
    }
    if (clients == 1024 && w1_wall != 0 && w4_wall != 0) {
      speedup_w4 = static_cast<double>(w1_wall) / static_cast<double>(w4_wall);
    }
    bench::PrintRule();
  }

  // The throughput-scaling gate only fires on a host with enough cores for
  // the 4 workers plus the drivers to actually run concurrently; on small
  // hosts the sweep still proves determinism and reports the measurement.
  const bool many_core = std::thread::hardware_concurrency() >= 8;
  bool scaling_ok = true;
  if (speedup_w4 != 0.0) {
    std::printf("1024-client sweep: workers=4 speedup over workers=1 = %.2fx"
                " (%s)\n",
                speedup_w4,
                many_core ? "asserted >= 2x" : "informational, host is small");
    if (many_core && speedup_w4 < 2.0) {
      scaling_ok = false;
      std::printf("!! worker pool failed to scale on a many-core host\n");
    }
  }
  CheckRealFleetWorkerIdentity(*scale_spec, scale_img, scale_input);
  WriteScaleJson(scale_out_path, scale_name, demand_addrs.size(), scale_rows,
                 speedup_w4, many_core);
  std::printf("reply streams identical across worker counts: %s\n",
              replies_identical ? "yes" : "NO");
  std::printf("wire bytes/client flat across worker counts: %s\n",
              wire_flat ? "yes" : "NO");
  std::printf("wrote %s\n", scale_out_path.c_str());
  return (translations_flat && wire_decreasing && replies_identical &&
          wire_flat && scaling_ok)
             ? 0
             : 1;
}
