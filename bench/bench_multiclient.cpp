// One memory controller serving N cache controllers: server-side economics.
//
// The paper's cost argument is that one powerful MC amortizes across many
// cheap embedded clients. This bench quantifies that: for client counts
// {1, 8, 64, 256} over three workloads it reports how much translation work
// and wire traffic the SERVER pays as the fleet grows. Two effects compose:
//
//   * the shared translation memo keeps the server's cut count FLAT (each
//     chunk translated once, ever) where a memo-less server would scale
//     linearly — the memo hit rate is exactly the fraction of fleet demand
//     served for free;
//   * content-addressed shared replies keep the server's WIRE cost per
//     client falling with fleet size: the first client to demand a hot chunk
//     pays the full body, every later client gets a 36-byte digest reply and
//     fills the chunk from its snooped content store. wire bytes / client
//     must therefore decrease monotonically as the fleet grows.
//
// Per-client guest behavior (output, exit code, instruction count, client
// translation count) is SC_CHECKed identical to the solo run at every fleet
// size. CYCLE counts are NOT compared: digest replies are smaller frames, so
// shared-reply mode legitimately changes miss-path timing — it may only
// change timing, never architectural state.
//
// Flags:
//   --smoke       one workload, clients {1, 2} only (CI crash check)
//   --out=PATH    JSON output path (default BENCH_multiclient.json)
//   --trace=PATH  merged Chrome trace of the first workload's 8-client fleet
//                 run (2 clients under --smoke): one lane per client plus the
//                 server loop/shard lanes, misses linked by flow arrows
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "obs/trace_mux.h"
#include "softcache/mc.h"
#include "softcache/system.h"

using namespace sc;

namespace {

struct Row {
  std::string workload;
  uint32_t clients = 0;
  uint64_t server_translates = 0;   // chunk cuts actually performed
  uint64_t memo_hits = 0;           // fleet demand served from the memo
  double memo_hit_rate = 0.0;       // hits / (hits + translates)
  uint64_t server_wire_bytes = 0;   // summed over every client channel
  double wire_bytes_per_client = 0.0;
  uint64_t server_requests = 0;     // frames the MC handled
  uint64_t shared_requests = 0;     // coalescible demand fetches
  uint64_t digest_replies = 0;      // replies that skipped the body
  uint64_t digest_bytes_saved = 0;  // body bytes that never hit the wire
  uint64_t client_miss_cycles = 0;  // client 0's miss-path cycles
  uint64_t client_cycles = 0;       // client 0's guest cycles
};

softcache::SoftCacheConfig BaseConfig() {
  softcache::SoftCacheConfig config;
  config.style = softcache::Style::kSparc;
  config.tcache_bytes = 24 * 1024;
  return config;
}

Row RunFleet(const workloads::WorkloadSpec& spec, const image::Image& img,
             const std::vector<uint8_t>& input, const bench::NativeRun& native,
             const bench::CachedRun& solo, uint32_t clients,
             const std::string& trace_path) {
  softcache::MultiClientConfig config;
  config.clients = clients;
  config.base = BaseConfig();
  config.base.shared_reply = true;  // content-addressed coalescing on
  config.server.shards = 4;         // exercise the sharded memo/translate path
  softcache::MultiClientSystem fleet(img, config);
  for (uint32_t i = 0; i < clients; ++i) fleet.SetInput(i, input);
  // Merged-trace export rides the same run the table row comes from: the
  // solo-equivalence SC_CHECKs below double as proof that tracing did not
  // perturb guest execution.
  obs::TraceMux mux;
  if (!trace_path.empty()) {
    fleet.AttachTraceMux(&mux);
    mux.EnableAll();
  }
  const std::vector<vm::RunResult> results = fleet.RunAll(16'000'000'000ull);
  if (!trace_path.empty()) {
    std::ofstream trace_out(trace_path);
    SC_CHECK(trace_out.good()) << "cannot open " << trace_path;
    mux.ExportChromeJson(trace_out);
    std::printf("wrote merged fleet trace %s (%zu lanes)\n", trace_path.c_str(),
                mux.lane_count());
  }

  Row row;
  row.workload = spec.name;
  row.clients = clients;
  for (uint32_t i = 0; i < clients; ++i) {
    // Solo-equivalence: sharing the server must not change ANY client's
    // guest-visible execution or its client-side cache contents. Cycles are
    // deliberately not compared — digest replies shrink miss-path frames.
    SC_CHECK(results[i].reason == vm::StopReason::kHalted)
        << spec.name << " client " << i << ": " << results[i].fault_message;
    SC_CHECK(fleet.OutputString(i) == native.output)
        << spec.name << " client " << i << " output diverged from native";
    SC_CHECK(results[i].exit_code == solo.result.exit_code)
        << spec.name << " client " << i << " exit code diverged from solo";
    SC_CHECK(results[i].instructions == solo.result.instructions)
        << spec.name << " client " << i << " instructions diverged from solo";
    SC_CHECK(fleet.cc(i).stats().blocks_translated ==
             solo.stats.blocks_translated)
        << spec.name << " client " << i << " translation count diverged";
    row.server_wire_bytes += fleet.channel(i).stats().total_bytes();
  }
  row.wire_bytes_per_client =
      static_cast<double>(row.server_wire_bytes) / static_cast<double>(clients);
  const softcache::McServerStats& server = fleet.mc().server().stats();
  row.server_translates = server.translates;
  row.memo_hits = server.translate_memo_hits;
  const uint64_t cuts = server.translates + server.translate_memo_hits;
  row.memo_hit_rate =
      cuts == 0 ? 0.0
                : static_cast<double>(server.translate_memo_hits) /
                      static_cast<double>(cuts);
  row.server_requests = server.requests_served;
  row.shared_requests = server.shared_requests;
  row.digest_replies = server.digest_replies;
  row.digest_bytes_saved = server.digest_bytes_saved;
  row.client_miss_cycles = fleet.cc(0).stats().miss_cycles;
  row.client_cycles = results[0].cycles;
  return row;
}

void PrintRow(const Row& row) {
  std::printf("%-10s %7u %10llu %10llu %8.1f%% %12llu %10.0f %10llu\n",
              row.workload.c_str(), row.clients,
              static_cast<unsigned long long>(row.server_translates),
              static_cast<unsigned long long>(row.memo_hits),
              100.0 * row.memo_hit_rate,
              static_cast<unsigned long long>(row.server_wire_bytes),
              row.wire_bytes_per_client,
              static_cast<unsigned long long>(row.digest_replies));
}

void WriteJson(const std::string& path, const std::vector<Row>& rows) {
  FILE* f = std::fopen(path.c_str(), "w");
  SC_CHECK(f != nullptr) << "cannot open " << path;
  std::fprintf(f, "{\n  \"bench\": \"multiclient\",\n  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"workload\": \"%s\", \"clients\": %u, "
                 "\"server_translates\": %llu, \"memo_hits\": %llu, "
                 "\"memo_hit_rate\": %.4f, \"server_wire_bytes\": %llu, "
                 "\"wire_bytes_per_client\": %.1f, "
                 "\"server_requests\": %llu, \"shared_requests\": %llu, "
                 "\"digest_replies\": %llu, \"digest_bytes_saved\": %llu, "
                 "\"client_miss_cycles\": %llu, \"client_cycles\": %llu}%s\n",
                 r.workload.c_str(), r.clients,
                 static_cast<unsigned long long>(r.server_translates),
                 static_cast<unsigned long long>(r.memo_hits),
                 r.memo_hit_rate,
                 static_cast<unsigned long long>(r.server_wire_bytes),
                 r.wire_bytes_per_client,
                 static_cast<unsigned long long>(r.server_requests),
                 static_cast<unsigned long long>(r.shared_requests),
                 static_cast<unsigned long long>(r.digest_replies),
                 static_cast<unsigned long long>(r.digest_bytes_saved),
                 static_cast<unsigned long long>(r.client_miss_cycles),
                 static_cast<unsigned long long>(r.client_cycles),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_multiclient.json";
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
    if (std::strncmp(argv[i], "--trace=", 8) == 0) trace_path = argv[i] + 8;
  }

  bench::PrintHeader(
      "One memory controller serving N cache controllers",
      "Section 1 (one powerful MC amortized across many cheap clients)");

  std::vector<std::string> names = {"dijkstra", "sha256", "adpcm_enc"};
  std::vector<uint32_t> fleet_sizes = {1, 8, 64, 256};
  if (smoke) {
    names.resize(1);
    fleet_sizes = {1, 2};
  }

  std::printf("%-10s %7s %10s %10s %9s %12s %10s %10s\n", "workload",
              "clients", "translate", "memo hits", "hit rate", "server bytes",
              "bytes/cl", "digests");
  bench::PrintRule();

  std::vector<Row> rows;
  bool translations_flat = true;
  bool wire_decreasing = true;
  for (const std::string& name : names) {
    const auto* spec = workloads::FindWorkload(name);
    SC_CHECK(spec != nullptr) << "unknown workload " << name;
    const image::Image img = workloads::CompileWorkload(*spec);
    const auto input = workloads::MakeInput(name, 1);
    const bench::NativeRun native = bench::RunNativeWorkload(img, input);
    const bench::CachedRun solo =
        bench::RunCachedWorkload(img, input, BaseConfig());
    SC_CHECK(solo.output == native.output) << name << " solo output diverged";

    uint64_t baseline_translates = 0;
    double prev_wire_per_client = 0.0;
    // One traced configuration per invocation: the first workload at the
    // second fleet size (8 clients, 2 under --smoke) keeps the trace small
    // enough to load while still showing cross-client reply coalescing.
    const uint32_t traced_clients = fleet_sizes[1];
    for (uint32_t clients : fleet_sizes) {
      const bool traced = !trace_path.empty() && name == names.front() &&
                          clients == traced_clients;
      const Row row = RunFleet(*spec, img, input, native, solo, clients,
                               traced ? trace_path : std::string());
      rows.push_back(row);
      PrintRow(row);
      // The tentpole economics, part 1: server translation work must not
      // scale with the fleet — every distinct chunk is cut once regardless
      // of client count, so every fleet size matches the 1-client cut count.
      if (clients == fleet_sizes.front()) {
        baseline_translates = row.server_translates;
      } else if (row.server_translates != baseline_translates) {
        translations_flat = false;
      }
      SC_CHECK(row.server_translates == baseline_translates)
          << name << " x" << clients
          << ": server translations scaled with the fleet";
      // Part 2: with shared replies the amortized wire cost per client must
      // FALL as the fleet grows — hot bodies cross the medium once, later
      // demanders ride 36-byte digest frames.
      if (clients != fleet_sizes.front() &&
          row.wire_bytes_per_client >= prev_wire_per_client) {
        wire_decreasing = false;
        std::printf("!! %s x%u: wire bytes/client did not decrease\n",
                    name.c_str(), clients);
      }
      prev_wire_per_client = row.wire_bytes_per_client;
    }
    bench::PrintRule();
  }

  WriteJson(out_path, rows);
  std::printf("\nserver translations flat across fleet sizes: %s\n",
              translations_flat ? "yes" : "NO");
  std::printf("wire bytes per client monotonically decreasing: %s\n",
              wire_decreasing ? "yes" : "NO");
  std::printf("wrote %s\n", out_path.c_str());
  return (translations_flat && wire_decreasing) ? 0 : 1;
}
