// Exercises the Section 3 software D-cache design: fast/slow hit and miss
// behaviour across cache sizes, the prediction-policy comparison the paper
// proposes (same-location / stride / second-chance), the pinned-scalar
// specialization (Figure 10 top), and the guaranteed "slow hit" latency.
#include "bench/bench_util.h"
#include "dcache/dcache.h"
#include "minicc/compiler.h"
#include "net/channel.h"
#include "softcache/mc.h"

using namespace sc;

namespace {

struct Kernel {
  const char* name;
  const char* source;
};

// Data-access kernels with different locality profiles.
const Kernel kKernels[] = {
    {"seq_scan", R"(
      int data[4096];
      int main() {
        for (int i = 0; i < 4096; i++) data[i] = i;
        int sum = 0;
        for (int pass = 0; pass < 6; pass++)
          for (int i = 0; i < 4096; i++) sum += data[i];
        return sum % 251;
      }
    )"},
    {"ptr_chase", R"(
      int next_idx[2048];
      int main() {
        for (int i = 0; i < 2048; i++) next_idx[i] = (i * 811 + 3) % 2048;
        int pos = 0;
        int acc = 0;
        for (int step = 0; step < 30000; step++) { pos = next_idx[pos]; acc += pos; }
        return acc % 251;
      }
    )"},
    {"hot_set", R"(
      int hot[64];
      int cold[8192];
      int main() {
        for (int i = 0; i < 8192; i++) cold[i] = i;
        int sum = 0;
        for (int step = 0; step < 40000; step++) {
          hot[step & 63] += step;
          if ((step & 1023) == 0) sum += cold[(step * 7) & 8191];
        }
        for (int i = 0; i < 64; i++) sum += hot[i];
        return sum % 251;
      }
    )"},
};

struct Result {
  dcache::DCacheStats stats;
  uint64_t cycles = 0;
  uint32_t guaranteed = 0;
};

Result RunKernel(const char* source, const dcache::DCacheConfig& config) {
  auto img = minicc::CompileMiniC(source);
  SC_CHECK(img.ok()) << img.error().ToString();
  vm::Machine machine;
  machine.LoadImage(*img);
  softcache::MemoryController mc(*img, softcache::Style::kSparc, 64);
  net::Channel channel;
  dcache::DataCache cache(machine, mc, channel, config);
  cache.Attach();
  const vm::RunResult run = machine.Run(2'000'000'000);
  SC_CHECK(run.reason == vm::StopReason::kHalted) << run.fault_message;
  cache.FlushAll();
  return Result{cache.stats(), run.cycles, cache.GuaranteedLatencyCycles()};
}

}  // namespace

int main() {
  bench::PrintHeader("Section 3: software data cache (scache + dcache) design",
                     "Section 3 / Figure 10 (paper design)");

  std::printf("capacity sweep (last-index prediction, 32 B blocks):\n");
  std::printf("%-10s %8s %10s %10s %10s %10s %10s\n", "kernel", "blocks",
              "fast-hit", "slow-hit", "miss", "wrbacks", "pred-acc");
  bench::PrintRule();
  for (const Kernel& kernel : kKernels) {
    for (const uint32_t blocks : {16u, 64u, 256u}) {
      dcache::DCacheConfig config;
      config.dcache_blocks = blocks;
      const Result r = RunKernel(kernel.source, config);
      const double pred_acc =
          r.stats.prediction_probes == 0
              ? 0.0
              : static_cast<double>(r.stats.prediction_hits) /
                    static_cast<double>(r.stats.prediction_probes);
      std::printf("%-10s %8u %9.2f%% %9.2f%% %9.2f%% %10llu %9.2f%%\n",
                  kernel.name, blocks, 100.0 * r.stats.fast_hit_rate(),
                  100.0 * static_cast<double>(r.stats.slow_hits) /
                      static_cast<double>(r.stats.fast_hits + r.stats.slow_hits +
                                          r.stats.misses),
                  100.0 * r.stats.miss_rate(),
                  static_cast<unsigned long long>(r.stats.writebacks),
                  100.0 * pred_acc);
    }
  }

  std::printf("\nprediction-policy comparison (64 blocks):\n");
  std::printf("%-10s %-14s %10s %10s %14s\n", "kernel", "policy", "fast-hit",
              "slow-hit", "extra cycles");
  bench::PrintRule();
  const struct {
    const char* label;
    dcache::Prediction policy;
  } kPolicies[] = {
      {"none", dcache::Prediction::kNone},
      {"last-index", dcache::Prediction::kLastIndex},
      {"stride", dcache::Prediction::kStride},
      {"second-chance", dcache::Prediction::kSecondChance},
  };
  for (const Kernel& kernel : kKernels) {
    for (const auto& policy : kPolicies) {
      dcache::DCacheConfig config;
      config.prediction = policy.policy;
      const Result r = RunKernel(kernel.source, config);
      std::printf("%-10s %-14s %9.2f%% %9.2f%% %14llu\n", kernel.name,
                  policy.label, 100.0 * r.stats.fast_hit_rate(),
                  100.0 * static_cast<double>(r.stats.slow_hits) /
                      static_cast<double>(r.stats.fast_hits + r.stats.slow_hits +
                                          r.stats.misses),
                  static_cast<unsigned long long>(r.stats.cycles));
    }
  }

  std::printf("\npinned-scalar specialization (Figure 10 top):\n");
  const char* scalar_kernel = R"(
    int counter = 0;
    int limit = 60000;
    int main() { while (counter < limit) counter += 1; return counter % 251; }
  )";
  for (const bool pin : {false, true}) {
    dcache::DCacheConfig config;
    config.pin_scalar_globals = pin;
    const Result r = RunKernel(scalar_kernel, config);
    std::printf("  pin=%d: pinned-hits=%llu extra-cycles=%llu\n", pin ? 1 : 0,
                static_cast<unsigned long long>(r.stats.pinned_hits),
                static_cast<unsigned long long>(r.stats.cycles));
  }

  std::printf("\nwrite policy (hot_set kernel, 64 blocks):\n");
  for (const bool wt : {false, true}) {
    dcache::DCacheConfig config;
    config.write_through = wt;
    const Result r = RunKernel(kKernels[2].source, config);
    std::printf("  %-13s writebacks=%-8llu extra-cycles=%llu\n",
                wt ? "write-through" : "write-back",
                static_cast<unsigned long long>(r.stats.writebacks),
                static_cast<unsigned long long>(r.stats.cycles));
  }

  std::printf("\nbanked local SRAM (novel capability 3: parallel accesses):\n");
  std::printf("%-10s %8s %14s %16s\n", "kernel", "banks", "conflicts",
              "parallelizable");
  bench::PrintRule();
  for (const Kernel& kernel : kKernels) {
    for (const uint32_t banks : {2u, 4u, 8u}) {
      dcache::DCacheConfig config;
      config.banks = banks;
      const Result r = RunKernel(kernel.source, config);
      const double parallel_fraction =
          1.0 - static_cast<double>(r.stats.bank_conflicts) /
                    static_cast<double>(r.stats.accesses);
      std::printf("%-10s %8u %14llu %15.1f%%\n", kernel.name, banks,
                  static_cast<unsigned long long>(r.stats.bank_conflicts),
                  100.0 * parallel_fraction);
    }
  }

  std::printf("\nguaranteed latency (the 'slow hit' bound, Section 3):\n");
  std::printf("%8s %22s\n", "blocks", "worst on-chip latency");
  for (const uint32_t blocks : {16u, 64u, 256u, 1024u}) {
    dcache::DCacheConfig config;
    config.dcache_blocks = blocks;
    const Result r = RunKernel("int main() { return 0; }", config);
    std::printf("%8u %19u cyc\n", blocks, r.guaranteed);
  }
  std::printf(
      "\npaper: the design trades per-access cost for a *bounded* on-chip\n"
      "latency — any cached datum is found within the binary-search bound\n"
      "without consulting the server; predictions make the common case a\n"
      "single probe.\n");
  return 0;
}
