// Ablations over this implementation's design choices (DESIGN.md section 5):
//   * eviction policy: FIFO ring vs flush-all, across pressure levels;
//   * chunk granularity: basic blocks (SPARC style) vs procedures (ARM
//     style) — translation counts, transfer bytes, overhead;
//   * basic-block size cap (max_block_instrs).
#include "bench/bench_util.h"
#include "util/stats.h"

using namespace sc;

int main() {
  bench::PrintHeader("Ablations: eviction policy, chunk granularity, block cap",
                     "implementation design choices (DESIGN.md section 5)");

  const auto* spec = workloads::FindWorkload("compress95");
  const image::Image img = workloads::CompileWorkload(*spec);
  const auto input = workloads::MakeInput("compress95", 2);
  const bench::NativeRun native = bench::RunNativeWorkload(img, input);
  const double ideal = static_cast<double>(native.result.cycles);

  std::printf("eviction policy (compress95, SPARC style):\n");
  std::printf("%-10s %-10s %10s %12s %12s %10s\n", "tcache", "policy",
              "rel.time", "translations", "evictions", "flushes");
  bench::PrintRule();
  for (const uint32_t size : {1024u, 2048u, 4096u, 16384u}) {
    for (const auto policy :
         {softcache::EvictPolicy::kFifoRing, softcache::EvictPolicy::kFlushAll}) {
      softcache::SoftCacheConfig config;
      config.tcache_bytes = size;
      config.evict = policy;
      const bench::CachedRun run = bench::RunCachedWorkload(img, input, config);
      std::printf("%9.1fK %-10s %10.2f %12llu %12llu %10llu\n",
                  static_cast<double>(size) / 1024.0,
                  policy == softcache::EvictPolicy::kFifoRing ? "fifo-ring"
                                                              : "flush-all",
                  static_cast<double>(run.result.cycles) / ideal,
                  static_cast<unsigned long long>(run.stats.blocks_translated),
                  static_cast<unsigned long long>(run.stats.evictions),
                  static_cast<unsigned long long>(run.stats.flushes));
    }
  }

  std::printf("\nchunk granularity (adpcm_enc, 32 KB cache):\n");
  std::printf("%-18s %12s %12s %14s %10s\n", "style", "chunks", "net bytes",
              "installed wds", "rel.time");
  bench::PrintRule();
  {
    const auto* adpcm = workloads::FindWorkload("adpcm_enc");
    const image::Image adpcm_img = workloads::CompileWorkload(*adpcm);
    const auto adpcm_input = workloads::MakeInput("adpcm_enc", 2);
    const bench::NativeRun adpcm_native =
        bench::RunNativeWorkload(adpcm_img, adpcm_input);
    for (const auto style : {softcache::Style::kSparc, softcache::Style::kArm}) {
      softcache::SoftCacheConfig config;
      config.style = style;
      config.tcache_bytes = 32 * 1024;
      const bench::CachedRun run =
          bench::RunCachedWorkload(adpcm_img, adpcm_input, config);
      std::printf("%-18s %12llu %12llu %14llu %10.2f\n",
                  style == softcache::Style::kSparc ? "basic blocks" : "procedures",
                  static_cast<unsigned long long>(run.stats.blocks_translated),
                  static_cast<unsigned long long>(run.net.total_bytes()),
                  static_cast<unsigned long long>(run.stats.words_installed),
                  static_cast<double>(run.result.cycles) /
                      static_cast<double>(adpcm_native.result.cycles));
    }
  }

  std::printf("\nbasic-block size cap (compress95, 32 KB cache):\n");
  std::printf("%8s %12s %12s %10s\n", "cap", "chunks", "net bytes", "rel.time");
  bench::PrintRule();
  for (const uint32_t cap : {8u, 16u, 32u, 64u, 128u}) {
    softcache::SoftCacheConfig config;
    config.tcache_bytes = 32 * 1024;
    config.max_block_instrs = cap;
    const bench::CachedRun run = bench::RunCachedWorkload(img, input, config);
    std::printf("%8u %12llu %12llu %10.2f\n", cap,
                static_cast<unsigned long long>(run.stats.blocks_translated),
                static_cast<unsigned long long>(run.net.total_bytes()),
                static_cast<double>(run.result.cycles) / ideal);
  }
  std::printf("\ntrace chunking (compress95, 32 KB cache; 1 = plain basic blocks):\n");
  std::printf("%8s %12s %12s %14s %10s\n", "blocks", "chunks", "net bytes",
              "extra words", "rel.time");
  bench::PrintRule();
  for (const uint32_t trace : {1u, 2u, 4u, 8u, 16u}) {
    softcache::SoftCacheConfig config;
    config.tcache_bytes = 32 * 1024;
    config.max_trace_blocks = trace;
    const bench::CachedRun run = bench::RunCachedWorkload(img, input, config);
    std::printf("%8u %12llu %12llu %14llu %10.2f\n", trace,
                static_cast<unsigned long long>(run.stats.blocks_translated),
                static_cast<unsigned long long>(run.net.total_bytes()),
                static_cast<unsigned long long>(run.stats.extra_words_live),
                static_cast<double>(run.result.cycles) / ideal);
  }

  std::printf(
      "\nfindings mirror the paper's tradeoff discussion: coarser chunks cut\n"
      "per-chunk protocol overhead but transfer and retranslate more; flush-\n"
      "all wins only when the working set wildly exceeds the cache.\n");
  return 0;
}
