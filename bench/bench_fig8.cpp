// Reproduces Figure 8: evictions per second over time for the ARM-style
// prototype running adpcm encode, at three CC memory sizes.
//
// Paper (800 B / 900 B / 1 KB of CC memory): the smallest memory pages
// continuously through steady state; the middle size is quiet in steady
// state but pages briefly at the end "to load the terminal statistics
// routines"; the largest size pages even less. CC memory sizes are scaled
// to our (smaller) compiled procedures: the three sizes bracket the
// steady-state hot-procedure footprint the same way 800/900/1024 bracketed
// the paper's.
#include <algorithm>

#include "bench/bench_util.h"
#include "util/stats.h"

using namespace sc;

namespace {

// The simulated embedded clock. Low enough that ~10 simulated seconds is
// tractable for the interpreter; all results are rates, so only the ratio
// of work to clock matters.
constexpr uint64_t kClockHz = 4'000'000;
constexpr double kBinSeconds = 0.5;

}  // namespace

int main() {
  bench::PrintHeader(
      "Figure 8: paging (evictions/sec) vs time, ARM-style CC, adpcm encode",
      "Figure 8 (Section 2.4)");

  const auto* spec = workloads::FindWorkload("adpcm_enc");
  SC_CHECK(spec != nullptr);
  const image::Image img = workloads::CompileWorkload(*spec);

  // Probe run: measure total footprint (steady state + terminal statistics
  // routines) with ample memory, and size the input for ~10 simulated
  // seconds of encoding.
  softcache::SoftCacheConfig probe;
  probe.style = softcache::Style::kArm;
  probe.tcache_bytes = 64 * 1024;
  probe.channel.clock_hz = kClockHz;
  int scale = 1;
  std::vector<uint8_t> input;
  bench::CachedRun probe_run;
  for (;;) {
    input = workloads::MakeInput("adpcm_enc", scale);
    probe_run = bench::RunCachedWorkload(img, input, probe);
    const double seconds = static_cast<double>(probe_run.result.cycles) /
                           static_cast<double>(kClockHz);
    if (seconds >= 9.0 || scale >= 64) break;
    scale = std::min(64, scale * 2);
  }
  const uint64_t total_bytes = probe_run.stats.tcache_bytes_used_peak;
  // Second probe: stop before the terminal statistics run to observe the
  // steady-state footprint alone (the paper's "hot code" set).
  uint64_t steady_bytes = 0;
  {
    softcache::SoftCacheSystem system(img, probe);
    system.SetInput(input);
    (void)system.Run(probe_run.result.instructions * 80 / 100);
    steady_bytes = system.stats().tcache_bytes_used_peak;
  }
  std::printf("steady-state footprint: %s;  with terminal routines: %s;  "
              "input scale %d\n",
              util::HumanBytes(steady_bytes).c_str(),
              util::HumanBytes(total_bytes).c_str(), scale);

  // Find the paging threshold empirically: sweep CC memory downward from
  // the steady-state footprint until evictions persist through the middle
  // of the run (sustained paging), like the paper's 800 B point. The size
  // one step larger is the "fits steady state" point (900 B analogue).
  struct SweepPoint {
    uint32_t bytes;
    double mid_rate;  // evictions/sec in the middle 60% of the run
  };
  std::vector<SweepPoint> sweep;
  uint32_t small_bytes = 0;
  uint32_t medium_bytes = static_cast<uint32_t>(steady_bytes * 104 / 100) & ~3u;
  for (uint32_t size = static_cast<uint32_t>(steady_bytes * 98 / 100) & ~3u;
       size >= 512; size = static_cast<uint32_t>(size * 93 / 100) & ~3u) {
    softcache::SoftCacheConfig config;
    config.style = softcache::Style::kArm;
    config.tcache_bytes = size;
    config.channel.clock_hz = kClockHz;
    softcache::SoftCacheSystem system(img, config);
    system.SetInput(input);
    const vm::RunResult result = system.Run(16'000'000'000ull);
    if (result.reason != vm::StopReason::kHalted) break;  // chunk > cache
    const uint64_t lo = result.cycles * 20 / 100;
    const uint64_t hi = result.cycles * 80 / 100;
    const uint64_t mid_evictions =
        system.stats().eviction_timeline.CountInRange(lo, hi);
    const double mid_rate = static_cast<double>(mid_evictions) /
                            (static_cast<double>(hi - lo) / kClockHz);
    sweep.push_back({size, mid_rate});
    if (mid_rate > 1.0) {
      small_bytes = size;
      break;
    }
    medium_bytes = size;
  }
  std::printf("\nCC memory sweep (steady-state paging threshold):\n");
  std::printf("%10s %18s\n", "CC bytes", "mid-run evict/sec");
  for (const SweepPoint& p : sweep) {
    std::printf("%10u %18.1f\n", p.bytes, p.mid_rate);
  }
  if (small_bytes == 0 && !sweep.empty()) small_bytes = sweep.back().bytes;
  SC_CHECK_GT(small_bytes, 0u);

  struct MemPoint {
    const char* label;
    uint32_t bytes;
  };
  const MemPoint kMems[] = {
      {"small  (under steady state -> pages continuously)", small_bytes},
      {"medium (fits steady state; terminal blip)", medium_bytes},
      {"large  (fits everything)",
       static_cast<uint32_t>(total_bytes * 108 / 100) & ~3u},
  };

  for (const MemPoint& mem : kMems) {
    softcache::SoftCacheConfig config;
    config.style = softcache::Style::kArm;
    config.tcache_bytes = mem.bytes;
    config.channel.clock_hz = kClockHz;
    const bench::CachedRun run = bench::RunCachedWorkload(img, input, config);
    const double total_seconds = static_cast<double>(run.result.cycles) /
                                 static_cast<double>(kClockHz);
    // 20 equal time bins across the run (paging stretches a thrashing run's
    // simulated time, so bins adapt rather than truncate).
    constexpr int kBins = 20;
    const double bin_seconds = std::max(kBinSeconds, total_seconds / kBins);
    std::vector<int> counts(kBins, 0);
    const obs::Timeline& timeline = run.stats.eviction_timeline;
    if (!timeline.collapsed()) {
      for (const uint64_t cycle : timeline.samples()) {
        const int bin = static_cast<int>(static_cast<double>(cycle) /
                                         static_cast<double>(kClockHz) / bin_seconds);
        counts[static_cast<size_t>(std::min(bin, kBins - 1))]++;
      }
    } else {
      // A run with >64k evictions only has bin-resolution timestamps left;
      // attribute each timeline bin to the display bin holding its midpoint.
      const uint64_t bin_cycles =
          static_cast<uint64_t>(bin_seconds * static_cast<double>(kClockHz));
      for (int bin = 0; bin < kBins; ++bin) {
        const uint64_t lo = static_cast<uint64_t>(bin) * bin_cycles;
        const uint64_t hi = bin == kBins - 1 ? UINT64_MAX : lo + bin_cycles;
        counts[static_cast<size_t>(bin)] +=
            static_cast<int>(timeline.CountInRange(lo, hi));
      }
    }
    std::printf("\nCC memory = %u B  [%s]  run = %.1fs, %llu evictions total\n",
                mem.bytes, mem.label, total_seconds,
                static_cast<unsigned long long>(run.stats.evictions));
    std::printf("%8s %12s  %s\n", "t(s)", "evict/sec", "");
    for (int bin = 0; bin < kBins; ++bin) {
      const double rate =
          static_cast<double>(counts[static_cast<size_t>(bin)]) / bin_seconds;
      std::printf("%8.1f %12.1f  %s\n", (bin + 1) * bin_seconds, rate,
                  bench::Bar(rate, 800.0).c_str());
    }
  }

  std::printf(
      "\npaper: the smallest memory shows sustained paging across the whole\n"
      "run; the medium memory is quiet in steady state with a blip at the\n"
      "end when the terminal statistics routines load; the largest memory\n"
      "shows only the cold-start transient.\n");
  return 0;
}
