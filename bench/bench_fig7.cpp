// Reproduces Figure 7: software tcache miss rate versus tcache size.
// The miss rate uses the paper's definition: basic blocks translated
// divided by instructions executed.
#include "bench/bench_util.h"

using namespace sc;

int main() {
  bench::PrintHeader(
      "Figure 7: software cache (tcache) miss rate vs tcache size",
      "Figure 7 (Section 2.2)");

  const char* kApps[] = {"adpcm_enc", "compress95", "hextobdd", "mpeg2enc"};
  const uint32_t kSizes[] = {512,  1024,  2048,  4096, 8192,
                             16384, 32768, 65536, 131072};

  std::printf("%-10s", "size");
  for (const char* name : kApps) std::printf(" %11s", name);
  std::printf("\n");
  bench::PrintRule();

  std::vector<image::Image> images;
  std::vector<std::vector<uint8_t>> inputs;
  for (const char* name : kApps) {
    images.push_back(workloads::CompileWorkload(*workloads::FindWorkload(name)));
    inputs.push_back(workloads::MakeInput(name, 1));
  }
  for (const uint32_t size : kSizes) {
    std::printf("%7.1fKB", static_cast<double>(size) / 1024.0);
    for (size_t app = 0; app < images.size(); ++app) {
      softcache::SoftCacheConfig config;
      config.style = softcache::Style::kSparc;
      config.tcache_bytes = size;
      const bench::CachedRun run =
          bench::RunCachedWorkload(images[app], inputs[app], config);
      const double miss_rate =
          static_cast<double>(run.stats.blocks_translated) /
          static_cast<double>(run.result.instructions);
      std::printf(" %10.4f%%", 100.0 * miss_rate);
    }
    std::printf("\n");
  }
  std::printf(
      "\npaper: the tcache miss-rate knee falls at roughly the same size as\n"
      "the hardware cache knee of Figure 6 — the software cache needs a\n"
      "comparable amount of memory to capture the working set, without any\n"
      "tag hardware. Compare rows above against bench_fig6.\n");
  return 0;
}
