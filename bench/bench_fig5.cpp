// Reproduces Figure 5: relative execution time of the software instruction
// cache on 129.compress, normalized to the "ideal" (no software cache) run.
//
// Paper bars: ideal 1.0; 48 KB tcache ("infinite") 1.17; 24 KB tcache 1.19;
// 1 KB tcache off the chart ("unknown", > 2) — the system still runs when
// the working set does not fit, just slowly.
#include "bench/bench_util.h"
#include "util/stats.h"

using namespace sc;

int main() {
  bench::PrintHeader(
      "Figure 5: relative execution time, software I-cache (129.compress)",
      "Figure 5 (Section 2.2)");

  const auto* spec = workloads::FindWorkload("compress95");
  SC_CHECK(spec != nullptr);
  const image::Image img = workloads::CompileWorkload(*spec);
  // Input large enough that the initial cache-fill time is insignificant.
  const auto input = workloads::MakeInput("compress95", 8);

  const bench::NativeRun native = bench::RunNativeWorkload(img, input);
  const double ideal_cycles = static_cast<double>(native.result.cycles);

  struct Config {
    const char* label;
    uint32_t tcache_bytes;
  };
  const Config kConfigs[] = {
      {"48KB (infinite)", 48 * 1024},
      {"24KB tcache", 24 * 1024},
      {"1KB tcache", 1024},
  };

  std::printf("%-18s %10s %12s %10s %10s  %s\n", "tcache", "rel.time",
              "blocks", "evictions", "missrate", "");
  bench::PrintRule();
  std::printf("%-18s %10.2f %12s %10s %10s  %s\n", "ideal", 1.0, "-", "-", "-",
              bench::Bar(1.0, 2.5).c_str());

  for (const Config& config : kConfigs) {
    softcache::SoftCacheConfig sc_config;
    sc_config.style = softcache::Style::kSparc;
    sc_config.tcache_bytes = config.tcache_bytes;
    const bench::CachedRun run = bench::RunCachedWorkload(img, input, sc_config);
    const double rel =
        static_cast<double>(run.result.cycles) / ideal_cycles;
    const double miss_rate = static_cast<double>(run.stats.blocks_translated) /
                             static_cast<double>(run.result.instructions);
    std::printf("%-18s %10.2f %12llu %10llu %9.4f%%  %s\n", config.label, rel,
                static_cast<unsigned long long>(run.stats.blocks_translated),
                static_cast<unsigned long long>(run.stats.evictions),
                100.0 * miss_rate, bench::Bar(rel, 2.5).c_str());
  }

  // Generalization of the 19%-overhead claim: steady-state relative time
  // for the whole benchmark suite with a fitting cache.
  std::printf("\nall workloads, 48 KB tcache:\n");
  std::printf("%-12s %10s %12s %12s %12s\n", "app", "rel.time", "steady rel.",
              "instr ovhd", "blocks");
  bench::PrintRule();
  for (const auto& wl : workloads::AllWorkloads()) {
    const image::Image wl_img = workloads::CompileWorkload(wl);
    const auto wl_input = workloads::MakeInput(wl.name, 2);
    const bench::NativeRun wl_native = bench::RunNativeWorkload(wl_img, wl_input);
    softcache::SoftCacheConfig config;
    config.tcache_bytes = 48 * 1024;
    const bench::CachedRun run = bench::RunCachedWorkload(wl_img, wl_input, config);
    // "steady rel." excludes the one-time miss/transfer cycles — the paper's
    // "startup time of the cache is insignificant" regime, independent of
    // input length.
    const double steady =
        static_cast<double>(run.result.cycles - run.stats.miss_cycles) /
        static_cast<double>(wl_native.result.cycles);
    std::printf("%-12s %10.2f %12.2f %11.2f%% %12llu\n", wl.name.c_str(),
                static_cast<double>(run.result.cycles) /
                    static_cast<double>(wl_native.result.cycles),
                steady,
                100.0 *
                    (static_cast<double>(run.result.instructions) /
                         static_cast<double>(wl_native.result.instructions) -
                     1.0),
                static_cast<unsigned long long>(run.stats.blocks_translated));
  }

  std::printf(
      "\npaper: 1.17 / 1.19 slowdown when the working set fits (the cost of\n"
      "the extra per-block exit jumps), catastrophic but *functional* when\n"
      "it does not (1 KB bar). Expect the same ordering above: the two large\n"
      "caches nearly tie slightly above 1.0, the 1 KB cache thrashes.\n");
  return 0;
}
