// Superblock threaded-code engine vs the classic interpreter: host wall
// time to retire the same guest work, with bit-identical architectural
// results enforced on every row.
//
// Unlike the paper-figure benches (deterministic guest-cycle accounting,
// no wall clock), this bench is *about* host time: the threaded engine
// exists to kill per-instruction dispatch overhead, which only host wall
// time can see. Guest instruction and cycle counts still must not move —
// every engine row is SC_CHECKed bit-identical to the interpreter run
// (output bytes, exit code, instructions, cycles) before its time counts.
//
// Flags:
//   --smoke       one workload, one rep (CI crash check)
//   --check       exit nonzero unless threaded beats interp on sha256
//                 and cjpeg (native guest-execution time) — CI perf smoke
//   --out=PATH    JSON output path (default BENCH_superblock.json)
#include <chrono>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"

using namespace sc;

namespace {

struct Row {
  std::string workload;
  std::string mode;    // "native" | "softcache"
  std::string engine;  // "interp" | "threaded"
  uint64_t wall_ns = 0;  // best-of-reps, Run() only
  uint64_t instructions = 0;
  uint64_t cycles = 0;
  double mips = 0.0;  // guest instructions / host microsecond
};

struct Timed {
  vm::RunResult result;
  std::string output;
  uint64_t wall_ns = 0;
};

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// One native run; only Run() is inside the timer (image load, input setup
// and superblock translation warm-up all count — translation is part of the
// engine's cost, exactly like the paper's software cache counts its misses).
Timed RunNativeTimed(const image::Image& img, const std::vector<uint8_t>& input,
                     vm::Engine engine) {
  vm::Machine machine;
  machine.set_engine(engine);
  machine.LoadImage(img);
  machine.SetInput(input);
  Timed t;
  const uint64_t t0 = NowNs();
  t.result = machine.Run(16'000'000'000ull);
  t.wall_ns = NowNs() - t0;
  t.output = machine.OutputString();
  return t;
}

Timed RunSoftcacheTimed(const image::Image& img,
                        const std::vector<uint8_t>& input, vm::Engine engine) {
  softcache::SoftCacheConfig config;
  config.style = softcache::Style::kSparc;
  config.tcache_bytes = 64 * 1024;
  softcache::SoftCacheSystem system(img, config);
  system.machine().set_engine(engine);
  system.SetInput(input);
  Timed t;
  const uint64_t t0 = NowNs();
  t.result = system.Run(16'000'000'000ull);
  t.wall_ns = NowNs() - t0;
  t.output = system.OutputString();
  return t;
}

void CheckIdentical(const Timed& interp, const Timed& threaded,
                    const std::string& what) {
  SC_CHECK(interp.result.reason == vm::StopReason::kHalted)
      << what << " interp: " << interp.result.fault_message;
  SC_CHECK(threaded.result.reason == vm::StopReason::kHalted)
      << what << " threaded: " << threaded.result.fault_message;
  SC_CHECK(interp.result.exit_code == threaded.result.exit_code) << what;
  SC_CHECK(interp.result.instructions == threaded.result.instructions)
      << what << ": instruction counts diverged";
  SC_CHECK(interp.result.cycles == threaded.result.cycles)
      << what << ": cycle counts diverged";
  SC_CHECK(interp.output == threaded.output)
      << what << ": output bytes diverged";
}

Row MakeRow(const std::string& workload, const char* mode, const char* engine,
            const Timed& best) {
  Row row;
  row.workload = workload;
  row.mode = mode;
  row.engine = engine;
  row.wall_ns = best.wall_ns;
  row.instructions = best.result.instructions;
  row.cycles = best.result.cycles;
  row.mips = best.wall_ns == 0
                 ? 0.0
                 : static_cast<double>(best.result.instructions) * 1000.0 /
                       static_cast<double>(best.wall_ns);
  return row;
}

void WriteJson(const std::string& path, const std::vector<Row>& rows) {
  FILE* f = std::fopen(path.c_str(), "w");
  SC_CHECK(f != nullptr) << "cannot open " << path;
  std::fprintf(f, "{\n  \"bench\": \"superblock\",\n  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"workload\": \"%s\", \"mode\": \"%s\", "
                 "\"engine\": \"%s\", \"wall_ns\": %llu, "
                 "\"instructions\": %llu, \"cycles\": %llu, "
                 "\"mips\": %.2f}%s\n",
                 r.workload.c_str(), r.mode.c_str(), r.engine.c_str(),
                 static_cast<unsigned long long>(r.wall_ns),
                 static_cast<unsigned long long>(r.instructions),
                 static_cast<unsigned long long>(r.cycles), r.mips,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool check = false;
  std::string out_path = "BENCH_superblock.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--check") == 0) check = true;
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
  }

  bench::PrintHeader(
      "Superblock threaded-code engine vs per-instruction interpreter",
      "host dispatch overhead; guest-visible results bit-identical");

  std::vector<std::string> names = {"adpcm_enc", "compress95", "gzip",
                                    "cjpeg",     "hextobdd",   "sha256"};
  if (smoke) names = {"sha256"};
  const int scale = smoke ? 2 : 4;
  const int reps = smoke ? 1 : 3;

  std::printf("%-10s %-9s %-8s %10s %10s %12s %8s\n", "workload", "mode",
              "engine", "wall_ms", "speedup", "instrs", "mips");
  bench::PrintRule();

  std::vector<Row> rows;
  double sha256_speedup = 0.0;
  double cjpeg_speedup = 0.0;
  for (const std::string& name : names) {
    const auto* spec = workloads::FindWorkload(name);
    SC_CHECK(spec != nullptr) << "unknown workload " << name;
    const image::Image img = workloads::CompileWorkload(*spec);
    const auto input = workloads::MakeInput(name, scale);

    const struct {
      const char* mode;
      Timed (*run)(const image::Image&, const std::vector<uint8_t>&,
                   vm::Engine);
    } modes[] = {{"native", RunNativeTimed}, {"softcache", RunSoftcacheTimed}};

    for (const auto& m : modes) {
      Timed interp_best, threaded_best;
      for (int rep = 0; rep < reps; ++rep) {
        const Timed interp = m.run(img, input, vm::Engine::kInterp);
        const Timed threaded = m.run(img, input, vm::Engine::kThreaded);
        CheckIdentical(interp, threaded, name + "/" + m.mode);
        if (rep == 0 || interp.wall_ns < interp_best.wall_ns)
          interp_best = interp;
        if (rep == 0 || threaded.wall_ns < threaded_best.wall_ns)
          threaded_best = threaded;
      }
      const Row ri = MakeRow(name, m.mode, "interp", interp_best);
      const Row rt = MakeRow(name, m.mode, "threaded", threaded_best);
      rows.push_back(ri);
      rows.push_back(rt);
      const double speedup = rt.wall_ns == 0 ? 0.0
                                             : static_cast<double>(ri.wall_ns) /
                                                   static_cast<double>(rt.wall_ns);
      std::printf("%-10s %-9s %-8s %10.2f %10s %12llu %8.1f\n", name.c_str(),
                  m.mode, "interp", static_cast<double>(ri.wall_ns) / 1e6, "",
                  static_cast<unsigned long long>(ri.instructions), ri.mips);
      std::printf("%-10s %-9s %-8s %10.2f %9.2fx %12llu %8.1f\n", name.c_str(),
                  m.mode, "threaded", static_cast<double>(rt.wall_ns) / 1e6,
                  speedup, static_cast<unsigned long long>(rt.instructions),
                  rt.mips);
      if (std::strcmp(m.mode, "native") == 0) {
        if (name == "sha256") sha256_speedup = speedup;
        if (name == "cjpeg") cjpeg_speedup = speedup;
      }
    }
  }

  WriteJson(out_path, rows);
  std::printf("\nnative guest-execution speedup: sha256 %.2fx, cjpeg %.2fx\n",
              sha256_speedup, cjpeg_speedup);
  std::printf("wrote %s\n", out_path.c_str());

  if (check) {
    // CI perf smoke: the threaded engine must actually be faster where it
    // matters. Kept deliberately lenient (1.0x, not the 2x the full bench
    // demonstrates) so shared CI runners don't flake the gate.
    if (sha256_speedup <= 1.0 || (!smoke && cjpeg_speedup <= 1.0)) {
      std::fprintf(stderr,
                   "FAIL: threaded engine not faster than interpreter "
                   "(sha256 %.2fx, cjpeg %.2fx)\n",
                   sha256_speedup, cjpeg_speedup);
      return 1;
    }
    std::printf("check passed: threaded faster than interp\n");
  }
  return 0;
}
