// Full-adversity chaos soak: seeded bit-flip storms in every cached-state
// domain (tcache / staged prefetch / content store / superblocks / server
// memo), stacked on top of the existing adversities — packet drop/corrupt/
// duplicate, seeded server-crash schedules, multi-client fleets on both
// schedulers, eviction churn from a small tcache, and module-style
// self-modifying-code churn.
//
// The proof obligation is the self-healing contract: every scenario must
// COMPLETE with the guest's story (output bytes + exit code) identical to
// its fault-free reference, with heals > 0 wherever faults were injected —
// corruption is allowed to cost cycles, never correctness. The one
// measured regression is the integrity tax itself: with scrubbing on at
// the default interval and zero faults, cycle overhead must stay <= 10%.
// Emits BENCH_chaos.json.
//
// Flags:
//   --smoke      one workload, small fleet (CI soak; run over several seeds)
//   --seed=N     storm seed (default 7); CI sweeps 5 seeds
//   --out=PATH   JSON output path (default BENCH_chaos.json)
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "minicc/compiler.h"
#include "softcache/integrity.h"
#include "softcache/mc.h"

using namespace sc;

namespace {

// The engine-test SMC contract, sized to also churn a small tcache: the
// guest patches its own code through SYS_ICACHE_INVAL while storms corrupt
// the rewritten copies of that very code.
constexpr const char* kSmcChurnProgram = R"(
  int answer() { return 1011; }
  int work(int n) {
    int s = 0;
    for (int i = 0; i < n; i = i + 1) { s = (s * 31 + i) % 65521; }
    return s;
  }
  int main() {
    int before = answer();
    int *code = (int*)answer;
    int patched = 0;
    for (int i = 0; i < 32; i = i + 1) {
      if ((code[i] & 0xffff) == 1011) {
        code[i] = (int)((uint)code[i] & 0xffff0000) | 2022;
        patched = 1;
        break;
      }
    }
    if (!patched) return 1;
    int h = 0;
    for (int round = 0; round < 24; round = round + 1) {
      h = (h + work(400)) % 65521;
      __icache_inval((int)code, 128);
      h = (h + answer()) % 65521;
    }
    int after = answer();
    if (before != 1011) return 2;
    if (after != 2022) return 3;
    putchar(65 + h % 26);
    print_str(" smc ok\n");
    return 0;
  }
)";

struct Row {
  std::string workload;
  std::string scenario;
  uint64_t seed = 0;
  uint64_t flips = 0;       // bits injected (client domains + server memo)
  uint64_t detected = 0;    // digest mismatches caught before use
  uint64_t heals = 0;       // quarantined chunks reinstalled clean
  uint64_t quarantines = 0;
  uint64_t scrubs = 0;
  uint64_t cycles = 0;
  double overhead = 0.0;    // vs the scenario's fault-free reference
  bool completed = false;
  bool identical = false;   // output + exit identical to the reference
};

void PrintRow(const Row& row) {
  std::printf("%-10s %-18s %4llu %6llu %6llu %6llu %6llu %12llu %8.2f%% %5s\n",
              row.workload.c_str(), row.scenario.c_str(),
              static_cast<unsigned long long>(row.seed),
              static_cast<unsigned long long>(row.flips),
              static_cast<unsigned long long>(row.detected),
              static_cast<unsigned long long>(row.heals),
              static_cast<unsigned long long>(row.scrubs),
              static_cast<unsigned long long>(row.cycles),
              100.0 * row.overhead, row.identical ? "yes" : "NO");
}

softcache::SoftCacheConfig BaseConfig() {
  softcache::SoftCacheConfig config;
  config.style = softcache::Style::kSparc;
  config.tcache_bytes = 16 * 1024;  // small tcache: evictions force refetches
  return config;
}

softcache::MemFaultConfig Storm(uint64_t seed, double rate) {
  softcache::MemFaultConfig mf;
  mf.seed = seed;
  mf.rate = rate;
  return mf;
}

// Storm scenarios measure sustained healing, so the rung-2 heal budget is
// lifted (long workloads legitimately heal hundreds of times); the budget's
// clean-Fail ladder is proven in integrity_test instead.
void EnableStorm(softcache::IntegrityConfig* integrity, uint64_t seed,
                 double rate) {
  integrity->enabled = true;
  integrity->memfault = Storm(seed, rate);
  integrity->max_heal_attempts = 0;
}

struct ChaosRun {
  vm::RunResult result;
  std::string output;
  softcache::IntegrityStats integrity;
  softcache::McServerStats server;
};

ChaosRun RunSolo(const image::Image& img, const std::vector<uint8_t>& input,
                 const softcache::SoftCacheConfig& config, vm::Engine engine,
                 const softcache::McServerConfig& server = {}) {
  softcache::SoftCacheSystem system(img, config, server);
  system.machine().set_engine(engine);
  system.SetInput(input);
  ChaosRun run;
  run.result = system.Run(16'000'000'000ull);
  SC_CHECK(run.result.reason == vm::StopReason::kHalted)
      << "chaos run failed: " << run.result.fault_message;
  run.output = system.OutputString();
  run.integrity = system.stats().integrity;
  run.server = system.mc().server().stats();
  return run;
}

Row MakeRow(const std::string& workload, const std::string& scenario,
            uint64_t seed, const ChaosRun& run, const ChaosRun& base) {
  Row row;
  row.workload = workload;
  row.scenario = scenario;
  row.seed = seed;
  row.flips = run.integrity.flips_injected + run.server.memo_flips_injected;
  row.detected =
      run.integrity.corruptions_detected + run.server.memo_corruptions_detected;
  row.heals = run.integrity.heals + run.server.memo_heals;
  row.quarantines = run.integrity.quarantines;
  row.scrubs = run.integrity.scrubs;
  row.cycles = run.result.cycles;
  row.overhead = base.result.cycles == 0
                     ? 0.0
                     : static_cast<double>(run.result.cycles) /
                               static_cast<double>(base.result.cycles) -
                           1.0;
  row.completed = run.result.reason == vm::StopReason::kHalted;
  row.identical = run.output == base.output &&
                  run.result.exit_code == base.result.exit_code;
  return row;
}

void WriteJson(const std::string& path, const std::vector<Row>& rows) {
  FILE* f = std::fopen(path.c_str(), "w");
  SC_CHECK(f != nullptr) << "cannot open " << path;
  std::fprintf(f, "{\n  \"bench\": \"chaos\",\n  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"workload\": \"%s\", \"scenario\": \"%s\", "
                 "\"seed\": %llu, \"flips\": %llu, \"detected\": %llu, "
                 "\"heals\": %llu, \"quarantines\": %llu, \"scrubs\": %llu, "
                 "\"cycles\": %llu, \"overhead\": %.4f, "
                 "\"completed\": %s, \"identical\": %s}%s\n",
                 r.workload.c_str(), r.scenario.c_str(),
                 static_cast<unsigned long long>(r.seed),
                 static_cast<unsigned long long>(r.flips),
                 static_cast<unsigned long long>(r.detected),
                 static_cast<unsigned long long>(r.heals),
                 static_cast<unsigned long long>(r.quarantines),
                 static_cast<unsigned long long>(r.scrubs),
                 static_cast<unsigned long long>(r.cycles), r.overhead,
                 r.completed ? "true" : "false",
                 r.identical ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  uint64_t seed = 7;
  std::string out_path = "BENCH_chaos.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed = std::strtoull(argv[i] + 7, nullptr, 10);
    }
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
  }

  bench::PrintHeader(
      "Self-healing cache under full adversity: bit flips x packet faults x "
      "crashes x fleets x SMC churn",
      "robustness extension: software caching on soft-error-prone SRAM");

  std::vector<std::string> names = {"adpcm_enc", "sha256"};
  if (smoke) names.resize(1);
  const uint32_t fleet_clients = smoke ? 8 : 64;

  std::printf("%-10s %-18s %4s %6s %6s %6s %6s %12s %9s %5s\n", "workload",
              "scenario", "seed", "flips", "detect", "heals", "scrubs",
              "cycles", "overhead", "same");
  bench::PrintRule();

  std::vector<Row> rows;
  for (const std::string& name : names) {
    const auto* spec = workloads::FindWorkload(name);
    SC_CHECK(spec != nullptr) << "unknown workload " << name;
    const image::Image img = workloads::CompileWorkload(*spec);
    const auto input = workloads::MakeInput(name, 1);

    // Fault-free reference (integrity machinery off entirely).
    const ChaosRun base =
        RunSolo(img, input, BaseConfig(), vm::Engine::kInterp);

    // The integrity tax: digests + verify-on-use + scrub at the default
    // interval, zero faults. The acceptance bound: <= 10% cycle overhead.
    {
      softcache::SoftCacheConfig config = BaseConfig();
      config.integrity.enabled = true;
      const ChaosRun run = RunSolo(img, input, config, vm::Engine::kInterp);
      const Row row = MakeRow(name, "scrub-tax", seed, run, base);
      rows.push_back(row);
      PrintRow(row);
      SC_CHECK(row.identical) << name << ": scrubbing changed the run";
      SC_CHECK(row.overhead <= 0.10)
          << name << ": scrub overhead " << row.overhead << " exceeds 10%";
    }

    // Solo corruption storms, both engines. The threaded engine adds the
    // decoded-superblock fault domain on top of the tcache's.
    for (const auto& [engine, label] :
         {std::pair{vm::Engine::kInterp, "storm/interp"},
          std::pair{vm::Engine::kThreaded, "storm/threaded"}}) {
      softcache::SoftCacheConfig config = BaseConfig();
      EnableStorm(&config.integrity, seed, 0.05);
      softcache::McServerConfig server;
      server.memfault = Storm(seed + 1, 0.02);
      const ChaosRun run = RunSolo(img, input, config, engine, server);
      const Row row = MakeRow(name, label, seed, run, base);
      rows.push_back(row);
      PrintRow(row);
      SC_CHECK(row.identical) << name << "/" << label << " diverged";
      SC_CHECK(row.heals > 0) << name << "/" << label << ": no heals";
    }

    // The full-adversity fleet on the deterministic round-robin scheduler:
    // bit flips in every domain + lossy links + seeded server crashes +
    // shared-reply snooping (content-store domain) + eviction churn.
    {
      softcache::MultiClientConfig config;
      config.clients = fleet_clients;
      config.base = BaseConfig();
      config.base.tcache_bytes = 8 * 1024;
      config.base.shared_reply = true;
      EnableStorm(&config.base.integrity, seed, 0.05);
      config.base.fault.seed = seed;
      config.base.fault.drop = 0.02;
      config.base.fault.corrupt = 0.02;
      config.base.fault.duplicate = 0.02;
      config.base.fault.crash_period = 4000;
      config.server.memfault = Storm(seed + 1, 0.02);
      config.server.max_queue = 16;

      struct FleetOut {
        ChaosRun agg;
        bool all_ok = true;
        std::vector<uint64_t> cycles;  // per-client, for bit-identity checks
      };
      auto run_fleet = [&](const softcache::MultiClientConfig& cfg) {
        softcache::MultiClientSystem fleet(img, cfg);
        for (uint32_t i = 0; i < cfg.clients; ++i) fleet.SetInput(i, input);
        const auto results = fleet.RunAll();
        FleetOut out;
        for (uint32_t i = 0; i < cfg.clients; ++i) {
          out.all_ok = out.all_ok &&
                       results[i].reason == vm::StopReason::kHalted &&
                       fleet.OutputString(i) == base.output &&
                       results[i].exit_code == base.result.exit_code;
          out.cycles.push_back(results[i].cycles);
          const auto& integrity = fleet.cc(i).stats().integrity;
          out.agg.integrity.flips_injected += integrity.flips_injected;
          out.agg.integrity.corruptions_detected +=
              integrity.corruptions_detected;
          out.agg.integrity.heals += integrity.heals;
          out.agg.integrity.quarantines += integrity.quarantines;
          out.agg.integrity.scrubs += integrity.scrubs;
        }
        out.agg.result = results[0];
        out.agg.output = fleet.OutputString(0);
        out.agg.server = fleet.mc().server().stats();
        return out;
      };

      const FleetOut r0 = run_fleet(config);
      Row row = MakeRow(name, "fleet/adversity", seed, r0.agg, base);
      row.identical = r0.all_ok;
      row.completed = r0.all_ok;
      rows.push_back(row);
      PrintRow(row);
      SC_CHECK(r0.all_ok) << name << ": a fleet client diverged under chaos";
      SC_CHECK(row.heals > 0) << name << "/fleet: no heals";

      // The workers dimension: the identical storm with the memo sharded 4
      // ways, once drained by the borrowed-thread pump and once by 4
      // dedicated workers. The round-robin scheduler keeps one frame in
      // flight fleet-wide, so the pool may not change ANYTHING the guest
      // can see — per-client cycle counts and the fleet's injected-flip /
      // heal totals must match the workers=0 run bit for bit.
      softcache::MultiClientConfig sharded = config;
      sharded.server.shards = 4;
      const FleetOut w0 = run_fleet(sharded);
      sharded.server.workers = 4;
      const FleetOut w4 = run_fleet(sharded);
      Row wrow = MakeRow(name, "fleet/workers", seed, w4.agg, base);
      wrow.identical = w4.all_ok && w4.cycles == w0.cycles &&
                       w4.agg.output == w0.agg.output;
      wrow.completed = w4.all_ok;
      rows.push_back(wrow);
      PrintRow(wrow);
      SC_CHECK(w4.all_ok) << name << ": worker-pool fleet diverged under chaos";
      SC_CHECK(w4.cycles == w0.cycles)
          << name << ": the worker pool changed per-client cycle counts";
      SC_CHECK(w4.agg.integrity.flips_injected ==
               w0.agg.integrity.flips_injected)
          << name << ": storm streams diverged across worker counts";
      SC_CHECK(w4.agg.integrity.heals == w0.agg.integrity.heals &&
               w4.agg.server.memo_heals == w0.agg.server.memo_heals)
          << name << ": heal counts diverged across worker counts";
      SC_CHECK(wrow.heals > 0) << name << "/fleet-workers: no heals";
    }

    // The same storm on the host-thread-pool scheduler (threaded engine):
    // guest results must stay solo-identical despite nondeterministic
    // host-side interleaving at the server.
    {
      softcache::MultiClientConfig config;
      config.clients = smoke ? 4 : 8;
      config.base = BaseConfig();
      EnableStorm(&config.base.integrity, seed, 0.05);
      config.server.max_queue = 16;
      config.host_threads = 4;
      softcache::MultiClientSystem fleet(img, config);
      for (uint32_t i = 0; i < config.clients; ++i) {
        fleet.SetInput(i, input);
        fleet.machine(i).set_engine(vm::Engine::kThreaded);
      }
      const auto results = fleet.RunAll();
      ChaosRun agg;
      bool all_ok = true;
      for (uint32_t i = 0; i < config.clients; ++i) {
        all_ok = all_ok && results[i].reason == vm::StopReason::kHalted &&
                 fleet.OutputString(i) == base.output &&
                 results[i].exit_code == base.result.exit_code;
        const auto& integrity = fleet.cc(i).stats().integrity;
        agg.integrity.flips_injected += integrity.flips_injected;
        agg.integrity.corruptions_detected += integrity.corruptions_detected;
        agg.integrity.heals += integrity.heals;
        agg.integrity.quarantines += integrity.quarantines;
        agg.integrity.scrubs += integrity.scrubs;
      }
      agg.result = results[0];
      agg.server = fleet.mc().server().stats();
      Row row = MakeRow(name, "fleet/threads", seed, agg, base);
      row.identical = all_ok;
      row.completed = all_ok;
      rows.push_back(row);
      PrintRow(row);
      SC_CHECK(all_ok) << name << ": a threaded-fleet client diverged";
      SC_CHECK(row.heals > 0) << name << "/threads: no heals";
    }
  }

  // Module-style SMC churn under the storm: the guest keeps re-patching its
  // own code (repeated icache invalidations, re-translations) while flips
  // land in the freshly rewritten copies.
  {
    auto img = minicc::CompileMiniC(kSmcChurnProgram, "smc_churn.mc");
    SC_CHECK(img.ok()) << img.error().ToString();
    softcache::SoftCacheConfig clean_config = BaseConfig();
    clean_config.tcache_bytes = 2 * 1024;
    const ChaosRun smc_base =
        RunSolo(*img, {}, clean_config, vm::Engine::kInterp);
    SC_CHECK(smc_base.result.exit_code == 0)
        << "smc reference failed: exit " << smc_base.result.exit_code;
    for (const auto& [engine, label] :
         {std::pair{vm::Engine::kInterp, "smc/interp"},
          std::pair{vm::Engine::kThreaded, "smc/threaded"}}) {
      softcache::SoftCacheConfig config = clean_config;
      EnableStorm(&config.integrity, seed, 0.3);
      config.integrity.scrub_every = 2;
      const ChaosRun run = RunSolo(*img, {}, config, engine);
      const Row row = MakeRow("smc_churn", label, seed, run, smc_base);
      rows.push_back(row);
      PrintRow(row);
      SC_CHECK(row.identical) << "smc_churn/" << label << " diverged";
      SC_CHECK(row.heals > 0) << "smc_churn/" << label << ": no heals";
    }
  }

  WriteJson(out_path, rows);
  std::printf("\nwrote %s (%zu rows; every row completed with its "
              "reference's output)\n",
              out_path.c_str(), rows.size());
  return 0;
}
