// Reproduces Figure 9: normalized dynamic footprint — the size of the "hot"
// code (functions covering >= 90% of run time, found gprof-style) divided
// by the full static code size.
//
// Paper: adpcm encode 0.09, adpcm decode 0.07, gzip 0.09, cjpeg 0.13 —
// a 7-14x reduction from whole-program size to resident hot code.
#include "bench/bench_util.h"
#include "profile/profiler.h"
#include "util/stats.h"

using namespace sc;

int main() {
  bench::PrintHeader(
      "Figure 9: normalized dynamic footprint (hot code / static code)",
      "Figure 9 (Section 2.4)");

  std::printf("%-10s %12s %12s %12s %10s\n", "app", "hot(90%)", "static",
              "normalized", "reduction");
  bench::PrintRule();

  const char* kApps[] = {"adpcm_enc", "adpcm_dec", "gzip", "cjpeg"};
  for (const char* name : kApps) {
    const auto* spec = workloads::FindWorkload(name);
    SC_CHECK(spec != nullptr);
    const image::Image img = workloads::CompileWorkload(*spec);
    profile::Profiler profiler(img);
    bench::RunNativeWorkload(img, workloads::MakeInput(name, 2), &profiler);
    const uint64_t hot = profiler.HotCodeBytes(0.90);
    const uint64_t total = profiler.StaticTextBytes();
    const double normalized = static_cast<double>(hot) / static_cast<double>(total);
    std::printf("%-10s %12s %12s %11.2f %9.1fx  %s\n", name,
                util::HumanBytes(hot).c_str(), util::HumanBytes(total).c_str(),
                normalized, 1.0 / normalized, bench::Bar(normalized, 0.5).c_str());
    std::printf("           hot set:");
    for (const std::string& fn : profiler.HotFunctions(0.90)) {
      std::printf(" %s", fn.c_str());
    }
    std::printf("\n");
  }
  std::printf(
      "\npaper: 0.07-0.13 normalized footprint (7-14x reduction). The paper\n"
      "notes its static sizes exclude libc ('the effective hot sizes would\n"
      "be much smaller' with it); our static size *includes* the MiniC\n"
      "runtime, so matching or smaller ratios are expected.\n");
  return 0;
}
