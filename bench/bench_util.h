// Shared helpers for the paper-reproduction benchmark binaries.
//
// Each bench_* binary regenerates one table or figure from the paper,
// printing rows/series in the same shape the paper reports. Everything is
// deterministic: fixed seeds, fixed cycle model, no wall-clock anywhere.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "profile/profiler.h"
#include "softcache/system.h"
#include "util/check.h"
#include "vm/machine.h"
#include "workloads/workloads.h"

namespace sc::bench {

struct NativeRun {
  vm::RunResult result;
  std::string output;
};

// Runs a workload natively (optionally with a fetch observer attached).
inline NativeRun RunNativeWorkload(const image::Image& img,
                                   const std::vector<uint8_t>& input,
                                   vm::FetchObserver* observer = nullptr) {
  vm::Machine machine;
  machine.LoadImage(img);
  machine.SetInput(input);
  if (observer != nullptr) machine.set_fetch_observer(observer);
  NativeRun run;
  run.result = machine.Run(8'000'000'000ull);
  SC_CHECK(run.result.reason == vm::StopReason::kHalted)
      << "native run failed: " << run.result.fault_message;
  run.output = machine.OutputString();
  return run;
}

struct CachedRun {
  vm::RunResult result;
  softcache::SoftCacheStats stats;
  net::ChannelStats net;
  size_t resident_blocks = 0;
  uint64_t live_bytes = 0;
  uint64_t mc_restarts = 0;  // server crashes survived (crash injection)
  std::string output;
};

// Runs a workload under the software cache.
inline CachedRun RunCachedWorkload(const image::Image& img,
                                   const std::vector<uint8_t>& input,
                                   const softcache::SoftCacheConfig& config) {
  softcache::SoftCacheSystem system(img, config);
  system.SetInput(input);
  CachedRun run;
  run.result = system.Run(16'000'000'000ull);
  SC_CHECK(run.result.reason == vm::StopReason::kHalted)
      << "softcache run failed: " << run.result.fault_message;
  if (config.fault.crash_enabled()) {
    // A crash after the CC's last RPC must still replay the journal so the
    // MC's image matches; the barrier is part of the measured run.
    SC_CHECK(system.cc().SyncSession()) << "session failed to synchronize";
  }
  run.stats = system.stats();
  run.net = system.channel().stats();
  run.resident_blocks = system.cc().ResidentBlocks();
  run.live_bytes = system.cc().live_tcache_bytes();
  run.mc_restarts = system.mc().restarts();
  run.output = system.machine().OutputString();
  return run;
}

// ---- table formatting ----

inline void PrintHeader(const char* title, const char* paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("  reproduces: %s\n", paper_ref);
  std::printf("================================================================\n");
}

inline void PrintRule() {
  std::printf("----------------------------------------------------------------\n");
}

// An ASCII bar for figure-like output, scaled to `width` at `full`.
inline std::string Bar(double value, double full, int width = 40) {
  int n = static_cast<int>(value / full * width);
  if (n < 0) n = 0;
  if (n > width) n = width;
  return std::string(static_cast<size_t>(n), '#');
}

}  // namespace sc::bench
