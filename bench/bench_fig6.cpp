// Reproduces Figure 6: hardware I-cache miss rate versus cache size
// (direct-mapped, 16-byte blocks), plus the caption's tag-overhead estimate
// ("tags for 32-bit addresses would add an extra 11-18%").
#include "bench/bench_util.h"
#include "hwsim/cache.h"

using namespace sc;

int main() {
  bench::PrintHeader(
      "Figure 6: hardware cache miss rate vs cache size (direct-mapped, 16B "
      "blocks)",
      "Figure 6 (Section 2.2)");

  const char* kApps[] = {"adpcm_enc", "compress95", "hextobdd", "mpeg2enc"};
  const uint32_t kSizes[] = {128,  256,   512,   1024,  2048, 4096,
                             8192, 16384, 32768, 65536, 131072};

  std::printf("%-10s", "size");
  for (const char* name : kApps) std::printf(" %11s", name);
  std::printf("\n");
  bench::PrintRule();

  // One VM run per (app, size); images and inputs are compiled/generated
  // once per app, and determinism makes every fetch stream identical.
  std::vector<image::Image> images;
  std::vector<std::vector<uint8_t>> inputs;
  for (const char* name : kApps) {
    images.push_back(workloads::CompileWorkload(*workloads::FindWorkload(name)));
    inputs.push_back(workloads::MakeInput(name, 1));
  }
  for (const uint32_t size : kSizes) {
    std::printf("%7.1fKB", static_cast<double>(size) / 1024.0);
    for (size_t app = 0; app < images.size(); ++app) {
      hwsim::CacheConfig config;
      config.size_bytes = size;
      config.block_bytes = 16;
      config.associativity = 1;
      hwsim::ICacheProbe probe(config);
      bench::RunNativeWorkload(images[app], inputs[app], &probe);
      std::printf(" %10.4f%%", 100.0 * probe.stats().miss_rate());
    }
    std::printf("\n");
  }

  std::printf("\ntag overhead for 32-bit addresses (Figure 6 caption):\n");
  std::printf("%-10s %12s\n", "size", "tag+valid");
  for (const uint32_t size : kSizes) {
    hwsim::Cache cache(hwsim::CacheConfig{size, 16, 1});
    std::printf("%7.1fKB %11.1f%%\n", static_cast<double>(size) / 1024.0,
                100.0 * cache.TagOverheadFraction());
  }
  // Associativity ablation (beyond the paper's direct-mapped baseline).
  std::printf("\nassociativity ablation (compress95, 16 B blocks):\n");
  std::printf("%-10s %12s %12s %12s\n", "size", "1-way", "2-way", "4-way");
  bench::PrintRule();
  for (const uint32_t size : {512u, 1024u, 2048u, 4096u}) {
    std::printf("%7.1fKB", static_cast<double>(size) / 1024.0);
    for (const uint32_t ways : {1u, 2u, 4u}) {
      hwsim::ICacheProbe probe(hwsim::CacheConfig{size, 16, ways});
      bench::RunNativeWorkload(images[1], inputs[1], &probe);
      std::printf(" %11.4f%%", 100.0 * probe.stats().miss_rate());
    }
    std::printf("\n");
  }

  std::printf(
      "\npaper: miss-rate knees fall below ~10 KB for every benchmark and\n"
      "tags add 11-18%% of space. Our binaries are smaller than SPEC builds,\n"
      "so knees sit proportionally lower, but the curve shape and the tag\n"
      "overhead range match.\n");
  return 0;
}
