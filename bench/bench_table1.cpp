// Reproduces Table 1: dynamically- and statically-linked text segment sizes.
//
// Paper (UltraSPARC, gcc -O4):
//   App          Dynamic .text   Static .text
//   129.compress      21 KB          193 KB
//   adpcmenc           1 KB          139 KB   (static col listed as "139B",
//                                             an apparent typo for KB)
//   hextobdd          23 KB          205 KB
//   mpeg2enc         135 KB          590 KB
//
// Here "dynamic" is the bytes of distinct instructions actually fetched and
// "static" the full linked text segment (program + MiniC runtime). Our
// binaries are an order of magnitude smaller than SPEC/MediaBench builds,
// but the claim under test is the *ratio*: the touched code is a small
// fraction of the linked code, so a cache-sized memory suffices (Figure 2).
#include "bench/bench_util.h"
#include "profile/profiler.h"
#include "util/stats.h"

using namespace sc;

int main() {
  bench::PrintHeader("Table 1: dynamic vs static text segment sizes",
                     "Table 1 (Section 2.2)");
  std::printf("%-12s %14s %14s %10s\n", "app", "dynamic .text", "static .text",
              "dyn/static");
  bench::PrintRule();

  const char* kApps[] = {"compress95", "adpcm_enc", "hextobdd", "mpeg2enc"};
  for (const char* name : kApps) {
    const auto* spec = workloads::FindWorkload(name);
    SC_CHECK(spec != nullptr);
    const image::Image img = workloads::CompileWorkload(*spec);
    profile::Profiler profiler(img);
    bench::RunNativeWorkload(img, workloads::MakeInput(name, 2), &profiler);
    const uint64_t dynamic = profiler.DynamicTextBytes();
    const uint64_t static_text = profiler.StaticTextBytes();
    std::printf("%-12s %14s %14s %9.2f%%\n", name,
                util::HumanBytes(dynamic).c_str(),
                util::HumanBytes(static_text).c_str(),
                100.0 * static_cast<double>(dynamic) /
                    static_cast<double>(static_text));
  }
  std::printf(
      "\npaper: dynamic text is a small fraction of static text for every\n"
      "benchmark (e.g. compress 21/193 KB); the same holds above, so the\n"
      "physical instruction memory can be sized far below the program.\n");
  return 0;
}
