// The complete system the paper envisions: instruction AND data caching
// both in software on the client, everything else on the server. Measures
// each workload under (a) no caching (ideal), (b) software I-cache only
// (the SPARC prototype's configuration), and (c) software I-cache +
// software D-cache + scache (Sections 2 and 3 combined), reporting
// end-to-end relative time and the residual client memory footprint.
#include <cstring>
#include <fstream>
#include <string>

#include "bench/bench_util.h"
#include "dcache/dcache.h"
#include "obs/metrics.h"
#include "util/stats.h"

using namespace sc;

int main(int argc, char** argv) {
  // --metrics=FILE: after the table, dump the last workload's full metrics
  // registry (the i+d system) as JSON.
  std::string metrics_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--metrics=", 10) == 0) metrics_path = argv[i] + 10;
  }

  bench::PrintHeader(
      "Full system: software I-cache + software D-cache on one client",
      "Sections 2 + 3 combined (the paper's complete design)");

  std::printf("I-cache: 32 KB tcache; D-cache: 1024 x 64 B blocks (64 KB) + 4 KB scache\n\n");
  std::printf("%-12s %10s %10s %12s %10s %12s\n", "app", "icache", "i+d",
              "d fast-hit", "d miss", "local mem");
  bench::PrintRule();

  for (const auto& wl : workloads::AllWorkloads()) {
    const image::Image img = workloads::CompileWorkload(wl);
    const auto input = workloads::MakeInput(wl.name, 1);
    const bench::NativeRun native = bench::RunNativeWorkload(img, input);
    const double ideal = static_cast<double>(native.result.cycles);

    softcache::SoftCacheConfig config;
    config.tcache_bytes = 32 * 1024;

    // (b) I-cache only.
    const bench::CachedRun icache_run = bench::RunCachedWorkload(img, input, config);

    // (c) I-cache + D-cache.
    softcache::SoftCacheSystem system(img, config);
    system.SetInput(input);
    dcache::DCacheConfig dconfig;
    dconfig.local_base = system.cc().local_limit();
    dconfig.dcache_blocks = 1024;
    dconfig.block_bytes = 64;
    dcache::DataCache data_cache(system.machine(), system.mc(), system.channel(),
                                 dconfig);
    data_cache.Attach();
    const vm::RunResult full = system.Run(16'000'000'000ull);
    SC_CHECK(full.reason == vm::StopReason::kHalted) << full.fault_message;
    data_cache.FlushAll();

    if (!metrics_path.empty()) {
      obs::MetricsRegistry registry;
      system.RegisterMetrics(&registry);
      std::ofstream out(metrics_path);
      SC_CHECK(out.good()) << "cannot write " << metrics_path;
      out << registry.ToJson() << "\n";
    }

    const auto& ds = data_cache.stats();
    const uint64_t local_mem = system.stats().tcache_bytes_used_peak +
                               system.stats().return_stub_words * 4 +
                               system.stats().redirector_words * 4 +
                               (data_cache.local_limit() - system.cc().local_limit());
    std::printf("%-12s %10.2f %10.2f %11.2f%% %9.3f%% %12s\n", wl.name.c_str(),
                static_cast<double>(icache_run.result.cycles) / ideal,
                static_cast<double>(full.cycles) / ideal,
                100.0 * ds.fast_hit_rate(), 100.0 * ds.miss_rate(),
                util::HumanBytes(local_mem).c_str());
  }

  std::printf(
      "\nreading: the i+d column is the cost of running with NO hardware\n"
      "caching support at all — code hits are free (rewriting), data hits\n"
      "pay the Figure 10 sequences. The paper's Section 3 expectation holds:\n"
      "'a fully associative software cache for data will be slow because we\n"
      "cannot get rid of as many tag checks as we can for instructions',\n"
      "yet the latency stays bounded and the client memory stays small.\n"
      "Rows with a high d-miss rate are data working sets larger than the\n"
      "64 KB D-cache (compress's dictionary, gzip's window) — they page\n"
      "against the 10 Mbps link exactly as Figure 5's undersized I-cache\n"
      "did, degraded but correct.\n");
  return 0;
}
