// Speculative prefetch + batched replies: round trips, wire bytes and
// prefetch quality per policy, per workload.
//
// The paper charges 60 application bytes of protocol framing per chunk
// (Section 2.4); batching N chunks into one kChunkBatchReply pays that
// framing once plus 16 bytes of sub-header per chunk, and a staged chunk
// that is later demanded saves a full round trip. This bench sweeps the
// policies over the bundled workloads and emits BENCH_prefetch.json.
//
// Flags:
//   --smoke       one workload only (CI crash check)
//   --out=PATH    JSON output path (default BENCH_prefetch.json)
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "net/channel.h"
#include "softcache/cc.h"
#include "softcache/mc.h"
#include "softcache/protocol.h"

using namespace sc;

namespace {

struct Row {
  std::string workload;
  std::string policy;
  uint64_t round_trips = 0;   // logical RPCs over the link
  uint64_t wire_bytes = 0;    // both directions, framing included
  uint64_t cycles = 0;
  uint64_t staged_hits = 0;
  double accuracy = 0.0;      // prefetched chunks later demanded
  double coverage = 0.0;      // demand fetches served from staging
};

softcache::SoftCacheConfig BaseConfig() {
  softcache::SoftCacheConfig config;
  config.style = softcache::Style::kSparc;
  config.tcache_bytes = 64 * 1024;
  return config;
}

Row MakeRow(const std::string& workload, const std::string& policy,
            const vm::RunResult& result, const softcache::SoftCacheStats& stats,
            const net::ChannelStats& net) {
  Row row;
  row.workload = workload;
  row.policy = policy;
  row.round_trips = stats.net.requests;
  row.wire_bytes = net.total_bytes();
  row.cycles = result.cycles;
  row.staged_hits = stats.prefetch.hits;
  row.accuracy = stats.prefetch.accuracy();
  row.coverage = stats.prefetch.coverage();
  return row;
}

// One run with a caller-supplied MC, so the temperature table can be carried
// over between runs (the "warm MC" row).
Row RunWith(const workloads::WorkloadSpec& spec, const image::Image& img,
            const std::vector<uint8_t>& input, const std::string& expected,
            const softcache::SoftCacheConfig& config, const char* label,
            softcache::MemoryController* mc) {
  vm::Machine machine;
  machine.LoadImage(img);
  machine.SetInput(input);
  net::Channel channel(config.channel);
  softcache::CacheController cc(machine, *mc, channel, config);
  cc.Attach();
  const vm::RunResult result = machine.Run(16'000'000'000ull);
  SC_CHECK(result.reason == vm::StopReason::kHalted)
      << spec.name << "/" << label << " failed: " << result.fault_message;
  SC_CHECK(machine.OutputString() == expected)
      << spec.name << "/" << label << " output diverged from native";
  return MakeRow(spec.name, label, result, cc.stats(), channel.stats());
}

void PrintRow(const Row& row, const Row& off) {
  const double trip_save =
      off.round_trips == 0
          ? 0.0
          : 100.0 * (1.0 - static_cast<double>(row.round_trips) /
                               static_cast<double>(off.round_trips));
  std::printf("%-10s %-10s %8llu %7.1f%% %12llu %8llu %7.2f %7.2f\n",
              row.workload.c_str(), row.policy.c_str(),
              static_cast<unsigned long long>(row.round_trips), trip_save,
              static_cast<unsigned long long>(row.wire_bytes),
              static_cast<unsigned long long>(row.staged_hits), row.accuracy,
              row.coverage);
}

void WriteJson(const std::string& path, const std::vector<Row>& rows) {
  FILE* f = std::fopen(path.c_str(), "w");
  SC_CHECK(f != nullptr) << "cannot open " << path;
  std::fprintf(f, "{\n  \"bench\": \"prefetch\",\n  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"workload\": \"%s\", \"policy\": \"%s\", "
                 "\"round_trips\": %llu, \"wire_bytes\": %llu, "
                 "\"cycles\": %llu, \"staged_hits\": %llu, "
                 "\"accuracy\": %.4f, \"coverage\": %.4f}%s\n",
                 r.workload.c_str(), r.policy.c_str(),
                 static_cast<unsigned long long>(r.round_trips),
                 static_cast<unsigned long long>(r.wire_bytes),
                 static_cast<unsigned long long>(r.cycles),
                 static_cast<unsigned long long>(r.staged_hits), r.accuracy,
                 r.coverage, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_prefetch.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
  }

  bench::PrintHeader(
      "Speculative chunk prefetch with batched multi-chunk replies",
      "Section 2.4 (60 B/chunk framing) + CFG-guided speculation");

  std::vector<std::string> names = {"adpcm_enc", "compress95", "gzip",
                                    "cjpeg",     "hextobdd",   "sha256"};
  if (smoke) names.resize(1);

  std::printf("%-10s %-10s %8s %8s %12s %8s %7s %7s\n", "workload", "policy",
              "rpcs", "saved", "wire bytes", "hits", "acc", "cov");
  bench::PrintRule();

  std::vector<Row> rows;
  uint64_t improved = 0;
  for (const std::string& name : names) {
    const auto* spec = workloads::FindWorkload(name);
    SC_CHECK(spec != nullptr) << "unknown workload " << name;
    const image::Image img = workloads::CompileWorkload(*spec);
    const auto input = workloads::MakeInput(name, 1);
    const bench::NativeRun native = bench::RunNativeWorkload(img, input);

    // kOff: one 60-byte-framed round trip per chunk, byte-identical to the
    // seed protocol (bench_net reproduces the accounting).
    softcache::SoftCacheConfig config = BaseConfig();
    softcache::MemoryController mc_off(img, config.style,
                                       config.max_block_instrs,
                                       config.max_trace_blocks);
    const Row off = RunWith(*spec, img, input, native.output, config, "off",
                            &mc_off);
    rows.push_back(off);
    PrintRow(off, off);

    // Speculative rows walk deeper than the default and under a tight byte
    // budget, so admission is contended and the ranking policy actually
    // decides which candidates win (with slack budgets every policy admits
    // the whole candidate set and the rows are identical by construction).
    config.prefetch.depth = 4;
    config.prefetch.byte_budget = 1024;
    config.prefetch.policy = softcache::PrefetchPolicy::kNextN;
    softcache::MemoryController mc_next(img, config.style,
                                        config.max_block_instrs,
                                        config.max_trace_blocks);
    const Row next = RunWith(*spec, img, input, native.output, config, "nextN",
                             &mc_next);
    rows.push_back(next);
    PrintRow(next, off);

    // Temperature ranking, cold MC: first touch of every chunk ranks on
    // counts of zero, so this mostly measures the batching itself.
    config.prefetch.policy = softcache::PrefetchPolicy::kTemperature;
    softcache::MemoryController mc_temp(img, config.style,
                                        config.max_block_instrs,
                                        config.max_trace_blocks);
    const Row cold = RunWith(*spec, img, input, native.output, config,
                             "temp", &mc_temp);
    rows.push_back(cold);
    PrintRow(cold, off);

    // Warm MC: the same MemoryController serves a second complete run, so
    // ranking uses the demand counts learned from the first.
    const Row warm = RunWith(*spec, img, input, native.output, config,
                             "temp-warm", &mc_temp);
    rows.push_back(warm);
    PrintRow(warm, off);

    if (cold.round_trips * 10 <= off.round_trips * 7 &&
        cold.wire_bytes < off.wire_bytes) {
      ++improved;
    }
  }

  WriteJson(out_path, rows);
  std::printf("\nworkloads with >=30%% fewer round trips AND fewer wire bytes"
              " (temp vs off): %llu of %llu\n",
              static_cast<unsigned long long>(improved),
              static_cast<unsigned long long>(names.size()));
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
