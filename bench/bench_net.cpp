// Reproduces the Section 2.4 network measurement: "the network overhead for
// each code chunk downloaded [is] 60 application bytes ... exchanged between
// CC and MC", plus a bandwidth sensitivity sweep (the paper: transfer cost
// "will depend on the interconnect system").
#include "bench/bench_util.h"
#include "softcache/protocol.h"
#include "util/stats.h"

using namespace sc;

int main() {
  bench::PrintHeader("Section 2.4: per-chunk network overhead and accounting",
                     "Section 2.4 (ARM prototype results)");

  std::printf("protocol frame sizes:\n");
  std::printf("  request frame:        %u B\n", softcache::kRequestBytes);
  std::printf("  reply header+trailer: %u B\n",
              softcache::kReplyHeaderBytes + softcache::kReplyTrailerBytes);
  std::printf("  => per-chunk overhead: %u application bytes (paper: 60 B)\n\n",
              softcache::kPerChunkOverheadBytes);

  const auto* spec = workloads::FindWorkload("adpcm_enc");
  const image::Image img = workloads::CompileWorkload(*spec);
  const auto input = workloads::MakeInput("adpcm_enc", 1);

  std::printf("%-8s %10s %10s %12s %12s %12s\n", "style", "chunks", "msgs",
              "total bytes", "payload", "overhead");
  bench::PrintRule();
  for (const auto style : {softcache::Style::kSparc, softcache::Style::kArm}) {
    softcache::SoftCacheConfig config;
    config.style = style;
    config.tcache_bytes = 64 * 1024;
    const bench::CachedRun run = bench::RunCachedWorkload(img, input, config);
    const uint64_t chunks = run.stats.blocks_translated;
    const uint64_t overhead = chunks * softcache::kPerChunkOverheadBytes;
    std::printf("%-8s %10llu %10llu %12llu %12llu %12llu\n",
                style == softcache::Style::kSparc ? "sparc" : "arm",
                static_cast<unsigned long long>(chunks),
                static_cast<unsigned long long>(run.net.total_messages()),
                static_cast<unsigned long long>(run.net.total_bytes()),
                static_cast<unsigned long long>(run.net.total_bytes() - overhead),
                static_cast<unsigned long long>(overhead));
  }

  std::printf(
      "\ninterconnect sensitivity (ARM style, adpcm encode, cold start):\n");
  std::printf("%-12s %16s %16s\n", "link", "transfer cycles", "share of run");
  bench::PrintRule();
  const struct {
    const char* label;
    uint64_t bps;
  } kLinks[] = {
      {"1 Mbps", 1'000'000},
      {"10 Mbps", 10'000'000},   // the Skiff boards' Ethernet
      {"100 Mbps", 100'000'000},
      {"1 Gbps", 1'000'000'000},
  };
  for (const auto& link : kLinks) {
    softcache::SoftCacheConfig config;
    config.style = softcache::Style::kArm;
    config.tcache_bytes = 64 * 1024;
    config.channel.bits_per_second = link.bps;
    const bench::CachedRun run = bench::RunCachedWorkload(img, input, config);
    std::printf("%-12s %16llu %15.2f%%\n", link.label,
                static_cast<unsigned long long>(run.net.total_cycles),
                100.0 * static_cast<double>(run.net.total_cycles) /
                    static_cast<double>(run.result.cycles));
  }
  std::printf(
      "\npaper: 60 B of protocol overhead per chunk sets a floor on useful\n"
      "chunk sizes; the MC-side preparation time 'could easily be reduced\n"
      "to near zero by more powerful MC systems'.\n");
  return 0;
}
