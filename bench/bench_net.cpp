// Reproduces the Section 2.4 network measurement: "the network overhead for
// each code chunk downloaded [is] 60 application bytes ... exchanged between
// CC and MC", plus a bandwidth sensitivity sweep (the paper: transfer cost
// "will depend on the interconnect system").
#include "bench/bench_util.h"
#include "softcache/protocol.h"
#include "util/stats.h"

using namespace sc;

int main() {
  bench::PrintHeader("Section 2.4: per-chunk network overhead and accounting",
                     "Section 2.4 (ARM prototype results)");

  std::printf("protocol frame sizes:\n");
  std::printf("  request frame:        %u B\n", softcache::kRequestBytes);
  std::printf("  reply header+trailer: %u B\n",
              softcache::kReplyHeaderBytes + softcache::kReplyTrailerBytes);
  std::printf("  => per-chunk overhead: %u application bytes (paper: 60 B)\n\n",
              softcache::kPerChunkOverheadBytes);

  const auto* spec = workloads::FindWorkload("adpcm_enc");
  const image::Image img = workloads::CompileWorkload(*spec);
  const auto input = workloads::MakeInput("adpcm_enc", 1);

  std::printf("%-8s %10s %10s %12s %12s %12s\n", "style", "chunks", "msgs",
              "total bytes", "payload", "overhead");
  bench::PrintRule();
  for (const auto style : {softcache::Style::kSparc, softcache::Style::kArm}) {
    softcache::SoftCacheConfig config;
    config.style = style;
    config.tcache_bytes = 64 * 1024;
    const bench::CachedRun run = bench::RunCachedWorkload(img, input, config);
    const uint64_t chunks = run.stats.blocks_translated;
    const uint64_t overhead = chunks * softcache::kPerChunkOverheadBytes;
    std::printf("%-8s %10llu %10llu %12llu %12llu %12llu\n",
                style == softcache::Style::kSparc ? "sparc" : "arm",
                static_cast<unsigned long long>(chunks),
                static_cast<unsigned long long>(run.net.total_messages()),
                static_cast<unsigned long long>(run.net.total_bytes()),
                static_cast<unsigned long long>(run.net.total_bytes() - overhead),
                static_cast<unsigned long long>(overhead));
  }

  std::printf(
      "\ninterconnect sensitivity (ARM style, adpcm encode, cold start):\n");
  std::printf("%-12s %16s %16s\n", "link", "transfer cycles", "share of run");
  bench::PrintRule();
  const struct {
    const char* label;
    uint64_t bps;
  } kLinks[] = {
      {"1 Mbps", 1'000'000},
      {"10 Mbps", 10'000'000},   // the Skiff boards' Ethernet
      {"100 Mbps", 100'000'000},
      {"1 Gbps", 1'000'000'000},
  };
  for (const auto& link : kLinks) {
    softcache::SoftCacheConfig config;
    config.style = softcache::Style::kArm;
    config.tcache_bytes = 64 * 1024;
    config.channel.bits_per_second = link.bps;
    const bench::CachedRun run = bench::RunCachedWorkload(img, input, config);
    std::printf("%-12s %16llu %15.2f%%\n", link.label,
                static_cast<unsigned long long>(run.net.total_cycles),
                100.0 * static_cast<double>(run.net.total_cycles) /
                    static_cast<double>(run.result.cycles));
  }
  std::printf(
      "\nloss-rate sweep (ARM style, adpcm encode, drop=corrupt=dup=p,\n"
      "crash=p/10, seed 7):\n");
  std::printf("%-6s %8s %8s %9s %9s %7s %7s %7s %12s\n", "p", "rpcs", "retries",
              "timeouts", "corrupt", "stale", "crashes", "recover",
              "total bytes");
  bench::PrintRule();
  uint64_t bytes_at_p0 = 0;
  uint64_t chunks_at_p0 = 0;
  for (const double p : {0.0, 0.02, 0.05, 0.1, 0.2}) {
    softcache::SoftCacheConfig config;
    config.style = softcache::Style::kArm;
    config.tcache_bytes = 64 * 1024;
    config.fault.seed = 7;
    config.fault.drop = p;
    config.fault.corrupt = p;
    config.fault.duplicate = p;
    config.fault.crash = p / 10.0;  // server restarts ride the same sweep
    const bench::CachedRun run = bench::RunCachedWorkload(img, input, config);
    const softcache::LinkStats& link = run.stats.net;
    std::printf("%-6.2f %8llu %8llu %9llu %9llu %7llu %7llu %7llu %12llu\n", p,
                static_cast<unsigned long long>(link.requests),
                static_cast<unsigned long long>(link.retries),
                static_cast<unsigned long long>(link.timeouts),
                static_cast<unsigned long long>(link.corrupt_frames),
                static_cast<unsigned long long>(link.stale_replies),
                static_cast<unsigned long long>(run.mc_restarts),
                static_cast<unsigned long long>(run.stats.session.recoveries),
                static_cast<unsigned long long>(run.net.total_bytes()));
    if (p == 0.0) {
      SC_CHECK_EQ(run.mc_restarts, 0u);
      bytes_at_p0 = run.net.total_bytes();
      chunks_at_p0 = run.stats.blocks_translated;
      // The reliable-transport row must reproduce the paper's accounting
      // exactly: one request + one reply per chunk, 60 B of framing each.
      SC_CHECK_EQ(link.retries, 0u);
      SC_CHECK_EQ(link.requests, chunks_at_p0);
      SC_CHECK_EQ(run.net.messages_to_server, chunks_at_p0);
    }
  }
  const uint64_t payload_at_p0 =
      bytes_at_p0 - chunks_at_p0 * softcache::kPerChunkOverheadBytes;
  std::printf(
      "\nat p=0 the %llu chunks moved %llu B, of which %llu B payload and\n"
      "exactly %u B of framing per chunk — the paper's 60-byte figure.\n",
      static_cast<unsigned long long>(chunks_at_p0),
      static_cast<unsigned long long>(bytes_at_p0),
      static_cast<unsigned long long>(payload_at_p0),
      softcache::kPerChunkOverheadBytes);
  std::printf(
      "\npaper: 60 B of protocol overhead per chunk sets a floor on useful\n"
      "chunk sizes; the MC-side preparation time 'could easily be reduced\n"
      "to near zero by more powerful MC systems'.\n");
  return 0;
}
