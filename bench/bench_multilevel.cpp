// Explores the paper's multilevel suggestion: "Software caching may be used
// to implement a particular level in a multilevel caching system. For
// instance, the L2 cache could be managed in software while the L1 caches
// are conventional." (Section 1.)
//
// A small hardware L1 I-cache model observes the fetch stream of (a) the
// original program running natively and (b) the rewritten code running out
// of the tcache. This also measures a real side effect of rewriting: blocks
// are packed into the tcache in *first-execution order*, which changes L1
// locality versus the linker's layout — trace chunking packs whole paths
// contiguously and improves it further.
#include "bench/bench_util.h"
#include "hwsim/cache.h"

using namespace sc;

namespace {

double CachedRunL1MissRate(const image::Image& img,
                           const std::vector<uint8_t>& input,
                           const hwsim::CacheConfig& l1,
                           uint32_t trace_blocks) {
  softcache::SoftCacheConfig config;
  config.tcache_bytes = 48 * 1024;
  config.max_trace_blocks = trace_blocks;
  softcache::SoftCacheSystem system(img, config);
  system.SetInput(input);
  hwsim::ICacheProbe probe(l1);
  system.machine().set_fetch_observer(&probe);
  const vm::RunResult result = system.Run(8'000'000'000ull);
  SC_CHECK(result.reason == vm::StopReason::kHalted) << result.fault_message;
  return probe.stats().miss_rate();
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Multilevel: hardware L1 over a software-managed second level",
      "Section 1 ('the L2 cache could be managed in software')");

  const char* kApps[] = {"compress95", "adpcm_enc", "hextobdd", "cjpeg"};
  const hwsim::CacheConfig kL1{512, 16, 1};  // tiny conventional L1

  std::printf("L1: %u B direct-mapped, 16 B blocks; software level: 48 KB tcache\n\n",
              kL1.size_bytes);
  std::printf("%-12s %14s %14s %14s\n", "app", "native layout",
              "tcache layout", "tcache+traces");
  bench::PrintRule();
  for (const char* name : kApps) {
    const auto* spec = workloads::FindWorkload(name);
    const image::Image img = workloads::CompileWorkload(*spec);
    const auto input = workloads::MakeInput(name, 1);

    hwsim::ICacheProbe native_probe(kL1);
    bench::RunNativeWorkload(img, input, &native_probe);
    const double native_rate = native_probe.stats().miss_rate();
    const double cached_rate = CachedRunL1MissRate(img, input, kL1, 1);
    const double trace_rate = CachedRunL1MissRate(img, input, kL1, 8);

    std::printf("%-12s %13.4f%% %13.4f%% %13.4f%%\n", name, 100 * native_rate,
                100 * cached_rate, 100 * trace_rate);
  }
  std::printf(
      "\nreading: the software level replaces L2/memory entirely (its hits\n"
      "are plain SRAM reads), while the L1 sees rewritten code packed in\n"
      "first-execution order. Measured L1 miss rates sit within ~1-3 points\n"
      "of the linker's layout: the exit-slot words dilute locality slightly,\n"
      "trace chunking claws some of it back by packing paths contiguously.\n"
      "Conclusion matches the paper's framing: a conventional L1 composes\n"
      "with the software level at essentially unchanged L1 behaviour.\n");
  return 0;
}
