// Crash-recovery sweep: the MC "dies" on seeded schedules mid-run, restarts
// with only its stable (flushed) state, and the CC/dcache sessions must
// re-handshake and replay their upstream journals until the run completes.
//
// The proof obligation is bit-identity: under every crash schedule the guest
// output, exit code and retired instruction count must equal the crash-free
// run's exactly — recovery is allowed to cost cycles, never correctness.
// Emits BENCH_recovery.json.
//
// Flags:
//   --smoke       one workload only (CI crash check)
//   --out=PATH    JSON output path (default BENCH_recovery.json)
//   --trace=PATH  merged Chrome trace of a 4-client fleet under the period-64
//                 crash schedule: each client lane shows its re-handshake and
//                 journal replay against the shared server lanes
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "dcache/dcache.h"
#include "obs/trace_mux.h"
#include "softcache/mc.h"
#include "softcache/protocol.h"

using namespace sc;

namespace {

struct Row {
  std::string workload;
  std::string schedule;
  uint64_t crashes = 0;        // MC restarts survived
  uint64_t recoveries = 0;     // successful session recoveries (CC + dcache)
  uint64_t replays = 0;        // journal entries replayed
  uint64_t recovery_cycles = 0;
  uint64_t cycles = 0;
  double overhead = 0.0;       // cycle overhead vs the crash-free run
  bool identical = false;      // output + exit + instructions bit-identical
};

struct Schedule {
  const char* label;
  uint64_t period;        // crash every Nth request (0 = off)
  uint64_t after;         // crash once on the Nth request (0 = off)
  double rate;            // per-request crash probability
  uint64_t seed;
};

softcache::SoftCacheConfig BaseConfig() {
  softcache::SoftCacheConfig config;
  config.style = softcache::Style::kSparc;
  config.tcache_bytes = 16 * 1024;  // small tcache: evictions force refetches
  return config;
}

void ApplySchedule(softcache::SoftCacheConfig* config, const Schedule& s) {
  config->fault.seed = s.seed;
  config->fault.crash_period = s.period;
  config->fault.crash_after_requests = s.after;
  config->fault.crash = s.rate;
}

Row MakeRow(const std::string& workload, const char* label,
            const bench::CachedRun& run, const bench::CachedRun& base) {
  Row row;
  row.workload = workload;
  row.schedule = label;
  row.crashes = run.mc_restarts;
  row.recoveries = run.stats.session.recoveries;
  row.replays = run.stats.session.journal_replays;
  row.recovery_cycles = run.stats.session.recovery_cycles;
  row.cycles = run.result.cycles;
  row.overhead = base.result.cycles == 0
                     ? 0.0
                     : static_cast<double>(run.result.cycles) /
                               static_cast<double>(base.result.cycles) -
                           1.0;
  row.identical = run.output == base.output &&
                  run.result.exit_code == base.result.exit_code &&
                  run.result.instructions == base.result.instructions;
  return row;
}

void PrintRow(const Row& row) {
  std::printf("%-10s %-14s %7llu %7llu %7llu %12llu %8.2f%% %5s\n",
              row.workload.c_str(), row.schedule.c_str(),
              static_cast<unsigned long long>(row.crashes),
              static_cast<unsigned long long>(row.recoveries),
              static_cast<unsigned long long>(row.replays),
              static_cast<unsigned long long>(row.cycles),
              100.0 * row.overhead, row.identical ? "yes" : "NO");
}

// A run with the software D-cache attached: both the CC and the dcache hold
// sessions to the same MC, and each must recover independently when it dies.
bench::CachedRun RunWithDcache(const image::Image& img,
                               const std::vector<uint8_t>& input,
                               const softcache::SoftCacheConfig& config) {
  softcache::SoftCacheSystem system(img, config);
  system.SetInput(input);
  dcache::DCacheConfig dconfig;
  dconfig.local_base = system.cc().local_limit();
  dconfig.fault = config.fault;
  dcache::DataCache dc(system.machine(), system.mc(), system.channel(),
                       dconfig);
  dc.Attach();
  bench::CachedRun run;
  run.result = system.Run(16'000'000'000ull);
  SC_CHECK(run.result.reason == vm::StopReason::kHalted)
      << "dcache run failed: " << run.result.fault_message;
  dc.FlushAll();
  SC_CHECK(!dc.failed()) << "dcache session failed";
  if (config.fault.crash_enabled()) {
    SC_CHECK(system.cc().SyncSession()) << "cc session failed to synchronize";
  }
  run.stats = system.stats();
  run.stats.session.recoveries += dc.stats().session.recoveries;
  run.stats.session.journal_replays += dc.stats().session.journal_replays;
  run.stats.session.recovery_cycles += dc.stats().session.recovery_cycles;
  run.net = system.channel().stats();
  run.mc_restarts = system.mc().restarts();
  run.output = system.machine().OutputString();
  return run;
}

void WriteJson(const std::string& path, const std::vector<Row>& rows) {
  FILE* f = std::fopen(path.c_str(), "w");
  SC_CHECK(f != nullptr) << "cannot open " << path;
  std::fprintf(f, "{\n  \"bench\": \"recovery\",\n  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"workload\": \"%s\", \"schedule\": \"%s\", "
                 "\"crashes\": %llu, \"recoveries\": %llu, "
                 "\"replays\": %llu, \"recovery_cycles\": %llu, "
                 "\"cycles\": %llu, \"overhead\": %.4f, "
                 "\"identical\": %s}%s\n",
                 r.workload.c_str(), r.schedule.c_str(),
                 static_cast<unsigned long long>(r.crashes),
                 static_cast<unsigned long long>(r.recoveries),
                 static_cast<unsigned long long>(r.replays),
                 static_cast<unsigned long long>(r.recovery_cycles),
                 static_cast<unsigned long long>(r.cycles), r.overhead,
                 r.identical ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_recovery.json";
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
    if (std::strncmp(argv[i], "--trace=", 8) == 0) trace_path = argv[i] + 8;
  }

  bench::PrintHeader(
      "Epoch-fenced session recovery under seeded MC crash schedules",
      "robustness extension: software caching over an unreliable server");

  std::vector<std::string> names = {"adpcm_enc", "compress95", "sha256",
                                    "hextobdd"};
  if (smoke) names.resize(1);

  const Schedule kSchedules[] = {
      {"after-100", 0, 100, 0.0, 7},
      {"period-64", 64, 0, 0.0, 7},
      {"period-16", 16, 0, 0.0, 7},
      {"rate-0.02", 0, 0, 0.02, 7},
      {"rate-0.02/s11", 0, 0, 0.02, 11},
  };

  std::printf("%-10s %-14s %7s %7s %7s %12s %9s %5s\n", "workload", "schedule",
              "crashes", "recover", "replays", "cycles", "overhead", "same");
  bench::PrintRule();

  std::vector<Row> rows;
  for (const std::string& name : names) {
    const auto* spec = workloads::FindWorkload(name);
    SC_CHECK(spec != nullptr) << "unknown workload " << name;
    const image::Image img = workloads::CompileWorkload(*spec);
    const auto input = workloads::MakeInput(name, 1);

    // The crash-free run is the golden reference for bit-identity.
    softcache::SoftCacheConfig base_config = BaseConfig();
    const bench::CachedRun base =
        bench::RunCachedWorkload(img, input, base_config);
    Row base_row = MakeRow(name, "crash-free", base, base);
    rows.push_back(base_row);
    PrintRow(base_row);

    for (const Schedule& s : kSchedules) {
      softcache::SoftCacheConfig config = BaseConfig();
      ApplySchedule(&config, s);
      const bench::CachedRun run = bench::RunCachedWorkload(img, input, config);
      const Row row = MakeRow(name, s.label, run, base);
      rows.push_back(row);
      PrintRow(row);
      SC_CHECK(row.identical)
          << name << "/" << s.label << " diverged from the crash-free run";
    }

    // Crashes landing inside batched prefetch replies: staged chunks from the
    // dead epoch must be dropped, then refetched on demand.
    {
      softcache::SoftCacheConfig config = BaseConfig();
      config.prefetch.policy = softcache::PrefetchPolicy::kTemperature;
      const bench::CachedRun pf_base =
          bench::RunCachedWorkload(img, input, config);
      ApplySchedule(&config, kSchedules[2]);  // period-16
      const bench::CachedRun run = bench::RunCachedWorkload(img, input, config);
      const Row row = MakeRow(name, "temp+period-16", run, pf_base);
      rows.push_back(row);
      PrintRow(row);
      SC_CHECK(row.identical)
          << name << "/temp+period-16 diverged from the crash-free run";
    }

    // With the D-cache attached, dirty data writebacks ride the journal too.
    {
      softcache::SoftCacheConfig config = BaseConfig();
      const bench::CachedRun dc_base = RunWithDcache(img, input, config);
      ApplySchedule(&config, kSchedules[1]);  // period-64
      const bench::CachedRun run = RunWithDcache(img, input, config);
      const Row row = MakeRow(name, "dcache+per-64", run, dc_base);
      rows.push_back(row);
      PrintRow(row);
      SC_CHECK(row.identical)
          << name << "/dcache+per-64 diverged from the crash-free run";
    }
  }

  // Merged-trace view of recovery: a small fleet where every client carries
  // the period-64 crash schedule, exported through the fleet trace mux so
  // each client lane shows its re-handshake and journal replay while the
  // server loop/shard lanes show the restarts they recover from.
  if (!trace_path.empty()) {
    const std::string& name = names.front();
    const auto* spec = workloads::FindWorkload(name);
    SC_CHECK(spec != nullptr) << "unknown workload " << name;
    const image::Image img = workloads::CompileWorkload(*spec);
    const auto input = workloads::MakeInput(name, 1);
    softcache::SoftCacheConfig solo_config = BaseConfig();
    const bench::CachedRun solo =
        bench::RunCachedWorkload(img, input, solo_config);

    softcache::MultiClientConfig config;
    config.clients = 4;
    config.base = BaseConfig();
    ApplySchedule(&config.base, kSchedules[1]);  // period-64
    softcache::MultiClientSystem fleet(img, config);
    for (uint32_t i = 0; i < config.clients; ++i) fleet.SetInput(i, input);
    obs::TraceMux mux;
    fleet.AttachTraceMux(&mux);
    mux.EnableAll();
    const std::vector<vm::RunResult> results =
        fleet.RunAll(16'000'000'000ull);
    SC_CHECK(fleet.SyncSessions()) << "traced fleet failed to synchronize";
    for (uint32_t i = 0; i < config.clients; ++i) {
      SC_CHECK(results[i].reason == vm::StopReason::kHalted)
          << "traced fleet client " << i << ": " << results[i].fault_message;
      SC_CHECK(fleet.OutputString(i) == solo.output)
          << "traced fleet client " << i << " output diverged";
      SC_CHECK(results[i].instructions == solo.result.instructions)
          << "traced fleet client " << i << " instructions diverged";
    }
    std::ofstream trace_out(trace_path);
    SC_CHECK(trace_out.good()) << "cannot open " << trace_path;
    mux.ExportChromeJson(trace_out);
    std::printf("\nwrote merged recovery trace %s (%zu lanes, %llu MC "
                "restarts survived)\n",
                trace_path.c_str(), mux.lane_count(),
                static_cast<unsigned long long>(fleet.mc().restarts()));
  }

  WriteJson(out_path, rows);
  std::printf(
      "\nevery schedule produced guest output, exit code and instruction\n"
      "counts bit-identical to the crash-free run; recovery cost only\n"
      "cycles (handshake + journal replay + refetch of volatile state).\n");
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
